"""The semantic query cache: canonical keys, freshness buckets, budgets.

Cache hit rate is the whole thesis of Cache-and-Query, but exact-string
cache keys fragment it: two spellings of the same XPATH, or freshness
bounds of ``now-28s`` vs ``now-30s``, miss each other entirely and
re-dispatch WAN subqueries.  This module supplies the three pieces that
make the caches *semantic*:

**Canonicalization** (:func:`canonicalize`).  Equivalent queries are
rewritten to one normal form used as the cache key everywhere a query
string used to be: whitespace and quoting normalize in the unparser,
``timestamp``/``now`` sugar becomes the canonical function calls,
redundant ``.`` steps are dropped, predicates within a step (pure
conjunctive filters in this dialect -- ``position()``/``last()`` are
rejected at parse time) sort deterministically, commutative operator
chains (``or``/``and``/``|``) flatten, dedupe and sort, and
comparisons are mirrored so only ``>``/``>=`` remain with the
context-reference operand on the left.  Every rewrite is
semantics-preserving (hypothesis-verified: the canonical query
evaluates identically to the original over random documents).

**Freshness bucketing** (:class:`FreshnessBuckets`).  Consistency
tolerances are generalized *up* to configurable bucket boundaries
(``now-28s`` and ``now-30s`` both key as ``now-30s``), so
near-identical continuous queries share one cached region.  Sharing a
key never weakens the answer: the paper's subsumption check is applied
at serve time -- a bucketed entry is served only when its actual age
satisfies the *original* (tighter) bound, and the gather driver
re-asks exactly when a bucket-loosened wire answer fails the original
predicate (see ``GatherDriver``).

**Measured admission and eviction** (:class:`SemanticCache`).  A
size-aware LRU with per-entry hit/byte counters replaces unbounded
growth, with an optional second-chance (doorkeeper) admission policy
so one-shot queries do not churn entries that earn their keep.

**Prewarming** (:class:`QueryLog`, :func:`prewarm`).  A query log
captured by ``service.run_live`` replays against a cold cluster to
warm OA caches before traffic.

Everything reports through the metrics registry (see
``repro.obs.registry``) and shows up in EXPLAIN output.
"""

import json
import threading

from repro.core.consistency import (
    bucket_consistency_tolerances,
    rewrite_consistency_sugar,
)
from repro.core.lru import LRUCache
from repro.xpath import parser as xpath_parser
from repro.xpath.ast import (
    BinaryOperation,
    FilterExpression,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTypeTest,
    NumberLiteral,
    Step,
    UnaryMinus,
)

#: Default freshness bucket boundaries, in seconds.  Chosen to cover
#: the paper's 30s-tolerance examples with sub-2x rounding everywhere.
DEFAULT_BUCKET_BOUNDARIES = (5.0, 10.0, 15.0, 30.0, 60.0, 120.0, 300.0, 900.0)


class FreshnessBuckets:
    """Coarsened freshness tolerances: round *up* to a boundary.

    ``ceiling(28)`` with the default boundaries is ``30``: queries
    tolerating 28s and 30s of staleness share the 30s bucket.  A
    tolerance above the largest boundary (or non-positive) is returned
    unchanged -- bucketing never invents tolerance out of thin air.
    """

    __slots__ = ("boundaries",)

    def __init__(self, boundaries=DEFAULT_BUCKET_BOUNDARIES):
        cleaned = sorted(float(b) for b in boundaries)
        if not cleaned or any(b <= 0 for b in cleaned):
            raise ValueError("bucket boundaries must be positive")
        self.boundaries = tuple(cleaned)

    def ceiling(self, tolerance):
        """The smallest boundary >= *tolerance* (or *tolerance* itself
        when it exceeds every boundary or is not positive)."""
        if tolerance is None or tolerance <= 0:
            return tolerance
        for boundary in self.boundaries:
            if boundary >= tolerance:
                return boundary
        return tolerance

    @property
    def signature(self):
        return self.boundaries

    def __repr__(self):
        return f"FreshnessBuckets({list(self.boundaries)})"


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------
#: Operators whose operand order does not affect the result in this
#: dialect (no side effects, unordered node-sets).
_COMMUTATIVE_CHAINS = ("or", "and", "|")
_MIRROR = {"<": ">", "<=": ">="}
_SYMMETRIC = ("=", "!=")


def _is_redundant_self(step):
    return (
        step.axis == "self"
        and isinstance(step.node_test, NodeTypeTest)
        and step.node_test.node_type == "node"
        and not step.predicates
    )


def _flatten_chain(expression, operator):
    if isinstance(expression, BinaryOperation) and \
            expression.operator == operator:
        yield from _flatten_chain(expression.left, operator)
        yield from _flatten_chain(expression.right, operator)
    else:
        yield expression


def _is_literal(expression):
    return isinstance(expression, (Literal, NumberLiteral))


def _ordered_predicates(predicates):
    """Deduplicate and deterministically order a step's predicates.

    Predicates in this dialect are pure conjunctive filters (each node
    is kept iff every predicate is truthy; ``position()``/``last()``
    are rejected at parse time), so reordering is semantics-preserving.
    The sort key is the canonical text, so any spelling of the same
    predicate set keys identically.
    """
    seen = {}
    for predicate in predicates:
        seen.setdefault(predicate.unparse(), predicate)
    return [seen[text] for text in sorted(seen)]


def canonicalize_expression(expression):
    """Rewrite *expression* bottom-up into its canonical form.

    Semantics-preserving by construction; see the module docstring for
    the rewrite list.  The input tree is never mutated.
    """
    expression = rewrite_consistency_sugar(expression)
    return _canon(expression)


def _canon(node):
    if isinstance(node, LocationPath):
        steps = [
            _canon_step(step)
            for step in node.steps
            if not _is_redundant_self(step)
        ]
        return LocationPath(node.absolute, steps)
    if isinstance(node, FilterExpression):
        path = _canon(node.path) if node.path is not None else None
        return FilterExpression(
            _canon(node.primary),
            _ordered_predicates([_canon(p) for p in node.predicates]),
            path,
        )
    if isinstance(node, BinaryOperation):
        operator = node.operator
        left = _canon(node.left)
        right = _canon(node.right)
        if operator in _MIRROR:
            operator = _MIRROR[operator]
            left, right = right, left
        if operator in _SYMMETRIC:
            left, right = _order_symmetric(left, right)
        if operator in _COMMUTATIVE_CHAINS:
            rebuilt = BinaryOperation(operator, left, right)
            operands = _ordered_predicates(
                list(_flatten_chain(rebuilt, operator)))
            result = operands[0]
            for operand in operands[1:]:
                result = BinaryOperation(operator, result, operand)
            return result
        return BinaryOperation(operator, left, right)
    if isinstance(node, UnaryMinus):
        return UnaryMinus(_canon(node.operand))
    if isinstance(node, FunctionCall):
        return FunctionCall(node.name, [_canon(a) for a in node.arguments])
    return node


def _canon_step(step):
    return Step(step.axis, step.node_test,
                _ordered_predicates([_canon(p) for p in step.predicates]))


def _order_symmetric(left, right):
    """Canonical operand order for ``=`` / ``!=``.

    The context-reference side goes left, the literal right (so
    ``'yes' = available`` normalizes to the conventional
    ``available = 'yes'``); two operands of the same kind order by
    canonical text.
    """
    left_literal = _is_literal(left)
    right_literal = _is_literal(right)
    if left_literal and not right_literal:
        return right, left
    if right_literal and not left_literal:
        return left, right
    if right.unparse() < left.unparse():
        return right, left
    return left, right


class CanonicalQuery:
    """One query's canonical identity, exact and bucketed.

    ``key`` is the exact canonical text -- safe wherever the key must
    mean *precisely* this query (the compile cache).  ``bucket_key``
    additionally generalizes freshness tolerances up to their bucket
    boundary -- the *region* identity under which jitter-equivalent
    continuous queries share cached data.  ``tolerances`` lists each
    ``(original, bucketed)`` pair, and ``min_tolerance`` is the
    tightest original bound (the one served data must still satisfy).
    """

    __slots__ = ("source", "ast", "key", "bucket_ast", "bucket_key",
                 "tolerances")

    def __init__(self, source, ast, key, bucket_ast, bucket_key, tolerances):
        self.source = source
        self.ast = ast
        self.key = key
        self.bucket_ast = bucket_ast
        self.bucket_key = bucket_key
        self.tolerances = tuple(tolerances)

    @property
    def bucketed(self):
        """Whether bucketing changed any tolerance (key != bucket_key)."""
        return self.key != self.bucket_key

    @property
    def min_tolerance(self):
        """The tightest original tolerance, or ``None`` without one."""
        originals = [orig for orig, _bucket in self.tolerances]
        return min(originals) if originals else None

    def __repr__(self):
        return f"CanonicalQuery({self.key!r})"


#: Canonicalizations are pure functions of (source, bucket boundaries):
#: memoized process-wide so the hot query path pays the tree rewrite
#: once per distinct spelling.
_CANON_CACHE = LRUCache(max_entries=1024)


def canonicalize(query, buckets=None):
    """Canonicalize *query* (a string or AST) into a :class:`CanonicalQuery`.

    *buckets* (a :class:`FreshnessBuckets`) controls the bucketed key;
    ``None`` uses the default boundaries.
    """
    if buckets is None:
        buckets = _DEFAULT_BUCKETS
    cache_key = None
    if isinstance(query, str):
        cache_key = (query, buckets.signature)
        cached = _CANON_CACHE.get(cache_key)
        if cached is not None:
            return cached
        source = query
        ast = xpath_parser.parse(query)
    else:
        ast = query
        source = ast.unparse()
    canonical_ast = canonicalize_expression(ast)
    key = canonical_ast.unparse()
    bucket_ast, tolerances = bucket_consistency_tolerances(
        canonical_ast, buckets.ceiling)
    bucket_key = bucket_ast.unparse() if tolerances else key
    result = CanonicalQuery(source, canonical_ast, key, bucket_ast,
                            bucket_key, tolerances)
    if cache_key is not None:
        _CANON_CACHE.put(cache_key, result)
    return result


_DEFAULT_BUCKETS = FreshnessBuckets()


def canonical_key(query):
    """Shorthand: the exact canonical key of *query*."""
    return canonicalize(query).key


def canonicalization_stats():
    """Process-wide canonicalizer memo counters."""
    return dict(_CANON_CACHE.stats, entries=len(_CANON_CACHE))


# ----------------------------------------------------------------------
# The measured cache
# ----------------------------------------------------------------------
ADMIT_ALWAYS = "always"
ADMIT_SECOND_CHANCE = "second-chance"


class SemanticCacheConfig:
    """Tunables for semantic caching at one site.

    ``enabled``
        turn semantic keying off entirely (exact-string keys, the
        pre-semcache behaviour) -- the ablation lever the benchmarks
        flip;
    ``buckets``
        the :class:`FreshnessBuckets` (or an iterable of boundaries)
        used for region keys and wire-subquery generalization;
        ``None`` disables bucketing but keeps canonical keys;
    ``max_entries`` / ``max_bytes``
        the size-aware LRU budget of each :class:`SemanticCache`;
    ``admission``
        ``"always"`` admits every store; ``"second-chance"`` admits a
        key only on its second store within the ghost window, so
        one-shot queries never displace proven entries;
    ``ghost_entries``
        how many rejected first-sighting keys the doorkeeper remembers.
    """

    def __init__(self, enabled=True, buckets=DEFAULT_BUCKET_BOUNDARIES,
                 max_entries=512, max_bytes=8 * 1024 * 1024,
                 admission=ADMIT_ALWAYS, ghost_entries=1024):
        self.enabled = enabled
        if buckets is None:
            self.buckets = None
        elif isinstance(buckets, FreshnessBuckets):
            self.buckets = buckets
        else:
            self.buckets = FreshnessBuckets(buckets)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        if admission not in (ADMIT_ALWAYS, ADMIT_SECOND_CHANCE):
            raise ValueError(f"unknown admission policy {admission!r}")
        self.admission = admission
        self.ghost_entries = ghost_entries

    def __repr__(self):
        return (f"SemanticCacheConfig(enabled={self.enabled}, "
                f"admission={self.admission!r}, "
                f"max_entries={self.max_entries})")


def estimate_bytes(value):
    """A cheap, stable size estimate for cache accounting.

    Strings count their length, scalars a machine word, fragments the
    length of their (memoized) serialization, containers the sum of
    their parts.  Estimates only steer eviction; they need to be
    monotone and cheap, not exact.
    """
    if value is None:
        return 1
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (int, float, bool)):
        return 8
    if isinstance(value, (list, tuple)):
        return 8 + sum(estimate_bytes(item) for item in value)
    try:
        from repro.xmlkit.serializer import serialize as _serialize
        return len(_serialize(value))
    except Exception:
        return 64


class CacheEntry:
    """One cached value plus its accounting.

    ``tolerance`` records the in-query freshness tolerance of the query
    that *produced* the value (its tightest bound), so a later query
    sharing the bucket key but demanding a tighter bound can have the
    slack charged against its allowed age (the subsumption check).
    """

    __slots__ = ("key", "exact_key", "value", "nbytes", "computed_at",
                 "hits", "tolerance")

    def __init__(self, key, exact_key, value, nbytes, computed_at,
                 tolerance=None):
        self.key = key
        self.exact_key = exact_key
        self.value = value
        self.nbytes = nbytes
        self.computed_at = computed_at
        self.hits = 0
        self.tolerance = tolerance

    def age(self, now):
        return now - self.computed_at

    def __repr__(self):
        return (f"CacheEntry({self.key!r}, {self.nbytes}B, "
                f"hits={self.hits})")


class SemanticCache:
    """A size-aware LRU of freshness-stamped values, thread-safe.

    Keys are (bucketed) canonical query strings; each entry remembers
    the *exact* canonical key that produced it, so a hit under a
    different exact key is counted as a **bucket-coalesced** hit --
    the measurement the whole subsystem exists to improve.  Serving is
    always subsumption-checked: an entry is returned only when its age
    satisfies the caller's (original, tighter) bound.
    """

    def __init__(self, config=None):
        self.config = config or SemanticCacheConfig()
        self._entries = {}
        self._order = []  # LRU order, least-recent first (small caches)
        self._ghost = {}
        self._ghost_order = []
        self._bytes = 0
        self._lock = threading.Lock()
        self.stats = {
            "hits": 0,
            "misses": 0,
            "stale_rejects": 0,
            "bucket_coalesced_hits": 0,
            "stores": 0,
            "admission_rejects": 0,
            "evictions": 0,
            "evicted_bytes": 0,
            "predicate_evictions": 0,
        }

    # -- internals (call with the lock held) ---------------------------
    def _touch(self, key):
        try:
            self._order.remove(key)
        except ValueError:
            pass
        self._order.append(key)

    def _evict_to_budget(self):
        config = self.config
        while self._order and (
            len(self._entries) > config.max_entries
            or self._bytes > config.max_bytes
        ):
            victim = self._order.pop(0)
            entry = self._entries.pop(victim, None)
            if entry is not None:
                self._bytes -= entry.nbytes
                self.stats["evictions"] += 1
                self.stats["evicted_bytes"] += entry.nbytes

    def _admit(self, key):
        if self.config.admission == ADMIT_ALWAYS:
            return True
        if key in self._entries:
            return True  # refreshing an existing entry is always allowed
        if key in self._ghost:
            del self._ghost[key]
            self._ghost_order.remove(key)
            return True
        self._ghost[key] = True
        self._ghost_order.append(key)
        while len(self._ghost_order) > self.config.ghost_entries:
            dropped = self._ghost_order.pop(0)
            self._ghost.pop(dropped, None)
        return False

    # -- the public surface --------------------------------------------
    def lookup(self, key, now, max_age=None, exact_key=None,
               tolerance=None):
        """The entry under *key* iff its age satisfies *max_age*.

        *max_age* is the caller's **original** bound -- never the
        bucket boundary -- which is exactly the subsumption check that
        makes serving a shared (bucket-keyed) entry sound.  ``None``
        max_age never hits (an exact query cannot be served stale).

        When both the entry and the caller carry an in-query freshness
        *tolerance*, any slack the stored entry has over the caller
        (entry produced under a 30s bound, caller demands 28s) is
        charged against the allowed age, so a bucket-shared entry is
        never served past the caller's *tighter original* bound.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or max_age is None:
                self.stats["misses"] += 1
                return None
            allowed = max_age
            if tolerance is not None and entry.tolerance is not None:
                allowed = max_age - max(0.0, entry.tolerance - tolerance)
            if entry.age(now) > allowed:
                self.stats["misses"] += 1
                self.stats["stale_rejects"] += 1
                return None
            entry.hits += 1
            self.stats["hits"] += 1
            if exact_key is not None and entry.exact_key != exact_key:
                self.stats["bucket_coalesced_hits"] += 1
            self._touch(key)
            return entry

    def store(self, key, value, now, exact_key=None, nbytes=None,
              tolerance=None):
        """Admit *value* under *key*; returns the entry or ``None``.

        ``None`` means the admission policy turned the store down (a
        first-sighting key under second-chance admission).
        """
        with self._lock:
            if not self._admit(key):
                self.stats["admission_rejects"] += 1
                return None
            old = self._entries.get(key)
            if old is not None:
                self._bytes -= old.nbytes
            if nbytes is None:
                nbytes = estimate_bytes(value) + 64
            entry = CacheEntry(key, exact_key if exact_key is not None
                               else key, value, nbytes, now,
                               tolerance=tolerance)
            self._entries[key] = entry
            self._bytes += nbytes
            self._touch(key)
            self.stats["stores"] += 1
            self._evict_to_budget()
            return entry

    def peek(self, key):
        """The entry under *key* without touching counters or LRU order.

        Observability surfaces (EXPLAIN) use this so inspecting the
        cache never distorts the hit/miss statistics it reports.
        """
        with self._lock:
            return self._entries.get(key)

    def invalidate(self, key=None):
        with self._lock:
            if key is None:
                self._entries.clear()
                self._order.clear()
                self._bytes = 0
            else:
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._bytes -= entry.nbytes
                    try:
                        self._order.remove(key)
                    except ValueError:
                        pass

    def evict_matching(self, predicate):
        """Evict every entry whose key satisfies *predicate*.

        The targeted-invalidation surface for ownership changes: when
        a subtree migrates away, the entries covering it must go as
        one batch (their invalidation feed -- local updates -- moved
        with the subtree).  Counted under ``predicate_evictions``,
        separate from budget ``evictions``; returns how many entries
        were dropped.
        """
        with self._lock:
            doomed = [key for key in self._order if predicate(key)]
            for key in doomed:
                entry = self._entries.pop(key, None)
                if entry is None:
                    continue
                self._bytes -= entry.nbytes
                try:
                    self._order.remove(key)
                except ValueError:
                    pass
            self.stats["predicate_evictions"] += len(doomed)
            return len(doomed)

    @property
    def nbytes(self):
        return self._bytes

    def keys(self):
        with self._lock:
            return list(self._order)

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def metrics(self):
        """The registry-facing snapshot: counters plus byte gauges."""
        with self._lock:
            return dict(
                self.stats,
                entries=len(self._entries),
                bytes=self._bytes,
                ghost_entries=len(self._ghost),
            )

    def __repr__(self):
        return (f"SemanticCache({len(self)} entries, {self.nbytes}B, "
                f"hits={self.stats['hits']})")


# ----------------------------------------------------------------------
# Query logs and prewarming
# ----------------------------------------------------------------------
class QueryLog:
    """A bounded, replayable record of served queries.

    ``service.run_live`` appends to one when asked; :func:`prewarm`
    replays one against a cold cluster.  Saved as JSONL so logs from
    long-running deployments stream without loading whole files.
    """

    def __init__(self, max_records=100_000):
        self.max_records = max_records
        self._records = []
        self._lock = threading.Lock()

    def record(self, query, query_type=None, site=None):
        entry = {"query": str(query)}
        if query_type is not None:
            entry["type"] = query_type
        if site is not None:
            entry["site"] = site
        with self._lock:
            self._records.append(entry)
            if len(self._records) > self.max_records:
                del self._records[: len(self._records) - self.max_records]

    def __len__(self):
        with self._lock:
            return len(self._records)

    def __iter__(self):
        with self._lock:
            return iter(list(self._records))

    def save(self, path):
        with self._lock:
            records = list(self._records)
        with open(path, "w", encoding="utf-8") as handle:
            for entry in records:
                handle.write(json.dumps(entry, sort_keys=True))
                handle.write("\n")
        return len(records)

    @classmethod
    def load(cls, path, max_records=100_000):
        log = cls(max_records=max_records)
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                log.record(entry["query"], query_type=entry.get("type"),
                           site=entry.get("site"))
        return log

    def unique_queries(self):
        """Deduplicated queries by canonical key, first spelling wins.

        Replaying 10k logged queries that canonicalize to 40 regions
        costs 40 gathers -- deduplication is what makes prewarming
        cheap enough to run before every deployment.
        """
        seen = {}
        for entry in self:
            try:
                key = canonical_key(entry["query"])
            except Exception:
                key = entry["query"]
            seen.setdefault(key, entry)
        return list(seen.values())


def prewarm(cluster, log, now=None, limit=None, deduplicate=True):
    """Replay *log* against *cluster* to warm its OA caches.

    Each logged query routes to its LCA site and runs through that
    site's gather driver exactly as live traffic would, filling the
    site database (aggressive caching) and the aggregate cache.
    Returns a report dict: queries replayed, failures, per-site counts.

    *log* may be a :class:`QueryLog` or any iterable of query strings /
    ``{"query": ...}`` dicts.  With *deduplicate* (default) the replay
    collapses canonical duplicates first.
    """
    from repro.core.gather import SCALAR_WRAPPERS
    from repro.xpath.ast import FunctionCall as _FunctionCall

    if isinstance(log, QueryLog):
        entries = log.unique_queries() if deduplicate else list(log)
    else:
        entries = [
            entry if isinstance(entry, dict) else {"query": entry}
            for entry in log
        ]
        if deduplicate:
            seen = {}
            for entry in entries:
                try:
                    key = canonical_key(entry["query"])
                except Exception:
                    key = entry["query"]
                seen.setdefault(key, entry)
            entries = list(seen.values())
    if limit is not None:
        entries = entries[:limit]

    replayed = 0
    failures = 0
    by_site = {}
    for entry in entries:
        query = entry["query"]
        try:
            site, _path = cluster.route_query(query)
            driver = cluster.agent(site).driver
            ast = xpath_parser.parse(query)
            if isinstance(ast, _FunctionCall) and ast.name in SCALAR_WRAPPERS:
                driver.answer_scalar(ast, now=now)
            else:
                driver.gather(ast, now=now)
            driver.note_prewarm()
        except Exception:
            failures += 1
            continue
        replayed += 1
        by_site[site] = by_site.get(site, 0) + 1
    return {
        "replayed": replayed,
        "failures": failures,
        "unique": len(entries),
        "by_site": by_site,
    }
