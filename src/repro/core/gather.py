"""The gather driver: iterate QEG until the answer is complete.

An organizing agent answers a query by looping:

1. run QEG over the local database (owned + cached data);
2. send every emitted subquery to the responsible remote site
   (via the caller-supplied ``send`` function);
3. merge the returned wire fragments back in (into the real database
   when caching is enabled -- the paper's aggressive caching -- or into
   a throwaway overlay otherwise), record scalar probe answers;
4. repeat until QEG emits no subqueries.

For nesting depth 0 the loop converges in one round against owners
whose own answers are complete; deeper rounds occur for nesting
depth > 0 (fetch-then-evaluate) and for probe strategies.

The final user-visible answer is re-extracted from the gathered data by
evaluating the original query (minus consistency predicates -- freshness
was enforced during gathering) and keeping matches whose subtrees are
materialized.
"""

import threading

from repro.core.aggregates import AggregateCache
from repro.core.database import SensorDatabase
from repro.core.errors import CoreError
from repro.core.executors import resolve_executor
from repro.core.idable import (
    id_path_of,
    idable_children,
    lowest_idable_ancestor_or_self,
)
from repro.core.answer import Subquery
from repro.core.consistency import rewrite_consistency_sugar
from repro.core.qeg import (
    FETCH_SUBTREE,
    GENERALIZE_ANSWER,
    CompiledPattern,
    compile_pattern,
    run_qeg,
)
from repro.core.semcache import (
    SemanticCacheConfig,
    canonicalization_stats,
    canonicalize,
)
from repro.core.status import get_status, strip_internal_attributes
from repro.obs.tracing import TRACER, propagate
from repro.xmlkit.nodes import Element, Text
from repro.xpath.ast import FunctionCall, LocationPath
from repro.xpath.evaluator import Evaluator
from repro.xpath import parser as xpath_parser

_EVALUATOR = Evaluator()

#: Scalar wrappers an agent accepts around an absolute location path.
SCALAR_WRAPPERS = ("boolean", "count", "sum", "string", "number")


class GatherError(CoreError):
    """Raised when gathering fails to converge."""


class SubqueryFailure:
    """Terminal failure of one subquery dispatch (returned, not raised).

    The network layer hands this back through ``send``/``send_many``
    when a subquery exhausts its retry budget; the driver records it,
    stops re-asking, and degrades the answer instead of raising.
    ``causes`` lists what every attempt saw, last entry last.
    """

    __slots__ = ("subquery", "attempts", "causes", "stale_served",
                 "replica_too_stale")

    def __init__(self, subquery, attempts, causes=()):
        self.subquery = subquery
        self.attempts = attempts
        self.causes = [str(cause) for cause in causes]
        #: Set by the driver when ``stale_on_error`` served the cached
        #: copy of this region beyond its freshness bound.
        self.stale_served = False
        #: Set by the replication layer when a replica held a copy of
        #: the region but its stamp violated the query's freshness
        #: bound -- the region is still excised from the answer, the
        #: completeness report just says *why* failover refused it.
        self.replica_too_stale = False

    @property
    def id_path(self):
        return self.subquery.anchor_path

    @property
    def cause(self):
        return self.causes[-1] if self.causes else ""

    def report(self):
        return {
            "id_path": [list(entry) for entry in self.subquery.anchor_path],
            "query": self.subquery.query,
            "scalar": self.subquery.scalar,
            "attempts": self.attempts,
            "causes": list(self.causes),
        }

    def __repr__(self):
        return (f"SubqueryFailure({self.subquery.query!r}, "
                f"attempts={self.attempts}, cause={self.cause!r})")


class ReplicaServed:
    """A subquery answered from a replica after its owner failed.

    Returned through ``send``/``send_many`` (like
    :class:`SubqueryFailure`, but carrying data): the replication
    layer verified the replica's stamp against the wire query's
    freshness bound before handing this back, so the driver merges
    ``fragment`` exactly as an owner answer -- and the completeness
    report annotates the region ``served_by_replica`` instead of
    counting it against completeness.
    """

    __slots__ = ("subquery", "fragment", "replica", "owner", "age")

    def __init__(self, subquery, fragment, replica, owner, age=0.0):
        self.subquery = subquery
        self.fragment = fragment
        self.replica = replica
        self.owner = owner
        self.age = float(age)

    @property
    def id_path(self):
        return self.subquery.anchor_path

    def report(self):
        return {
            "id_path": [list(entry) for entry in self.subquery.anchor_path],
            "query": self.subquery.query,
            "replica": self.replica,
            "owner": self.owner,
            "age": round(self.age, 3),
        }

    def __repr__(self):
        return (f"ReplicaServed({self.subquery.query!r}, "
                f"replica={self.replica!r}, owner={self.owner!r}, "
                f"age={self.age:g})")


class GatherOutcome:
    """Everything a gather run produced, for answering and accounting.

    ``failures`` holds one :class:`SubqueryFailure` per subquery that
    exhausted its budget; an outcome with only ``stale_served``
    failures still counts as *complete* (every region is represented,
    some beyond its freshness bound), which
    :meth:`completeness_report` spells out for machine consumption.
    """

    def __init__(self, pattern, wire_answer, rounds, subqueries_sent,
                 view, failures=(), replica_served=()):
        self.pattern = pattern
        self.wire_answer = wire_answer
        self.rounds = rounds
        self.subqueries_sent = subqueries_sent
        self.view = view  # the database the answer was extracted from
        self.failures = list(failures)
        #: One :class:`ReplicaServed` per subquery answered by a
        #: replica instead of its (dead) owner.  The regions are fully
        #: represented -- the answer stays *complete* -- but the report
        #: names the replica and the copy's age.
        self.replica_served = list(replica_served)

    @property
    def used_remote_data(self):
        return bool(self.subqueries_sent)

    @property
    def complete(self):
        """Whether every queried region is represented in the answer."""
        return not any(not failure.stale_served
                       for failure in self.failures)

    @property
    def unreachable_paths(self):
        """Sorted, deduplicated anchor id-paths of unserved failures."""
        return tuple(sorted({failure.subquery.anchor_path
                             for failure in self.failures
                             if not failure.stale_served}))

    def completeness_report(self):
        """The machine-readable partial-answer contract.

        ``unreachable`` lists regions absent from the answer (with the
        subquery, attempt count and per-attempt causes);
        ``stale_served`` lists regions served from cache beyond their
        freshness bound under ``stale_on_error``;
        ``served_by_replica`` lists regions a replica answered for a
        dead owner (fresh per the query's bound -- still complete);
        ``replica_too_stale`` lists regions a replica held but refused
        to serve because its copy violated the bound (still excised,
        like ``unreachable``, with the refusal spelled out).
        """
        return {
            "complete": self.complete,
            "unreachable": [failure.report() for failure in self.failures
                            if not failure.stale_served
                            and not failure.replica_too_stale],
            "stale_served": [failure.report() for failure in self.failures
                             if failure.stale_served],
            "served_by_replica": [served.report()
                                  for served in self.replica_served],
            "replica_too_stale": [failure.report()
                                  for failure in self.failures
                                  if failure.replica_too_stale],
        }


def _is_path_prefix(shorter, longer):
    return len(shorter) <= len(longer) and \
        tuple(longer[:len(shorter)]) == tuple(shorter)


def _subsumed_by(pending, answered, pattern):
    """Whether *pending*'s data was already covered by an answered ask.

    An answered subquery's generalized reply is authoritative for the
    whole region its query selects; a later, narrower ask along the
    same pattern (deeper anchor, correspondingly more items consumed,
    no ``//`` ambiguity in between) can only select a subset of that
    region and therefore needs no new round-trip -- whatever it would
    fetch either arrived already or provably does not exist.
    """
    for earlier in answered:
        if earlier.scalar:
            continue
        if not _is_path_prefix(earlier.anchor_path, pending.anchor_path):
            continue
        if earlier.subtree:
            return True
        if pending.subtree or pending.scalar:
            continue
        if earlier.descendant_gap or pending.descendant_gap:
            continue
        if earlier.consumed is None or pending.consumed is None:
            continue
        depth_gap = len(pending.anchor_path) - len(earlier.anchor_path)
        if pending.consumed - earlier.consumed != depth_gap:
            continue
        between = pattern.items[earlier.consumed:pending.consumed]
        if any(item.descendant for item in between):
            continue
        return True
    return False


def _subtree_materialized(element):
    stack = [element]
    while stack:
        node = stack.pop()
        if not get_status(node).has_local_information:
            return False
        stack.extend(idable_children(node))
    return True


class GatherDriver:
    """Drives QEG-plus-subqueries for one site.

    *send* is a callable ``send(subquery) -> Element | scalar | None``
    implementing remote delivery (DNS lookup + transport); ``None``
    means the remote had nothing.  *cache_results* controls whether
    gathered fragments are merged into the site database (the paper's
    default) or into a per-query overlay.

    Each round's pending subqueries are independent, so they are
    dispatched concurrently through *executor* (the shared threaded
    executor by default; pass ``"serial"`` or a
    :class:`~repro.core.executors.SerialExecutor` for strictly
    sequential dispatch).  *send_many*, when given, overrides the
    executor for whole rounds: it receives the round's pending
    subqueries and returns their replies in the same order -- the hook
    the network layer uses to batch asks per destination site.
    Regardless of dispatch order, replies are merged back in subquery
    emission order, so gathered answers are identical under any
    executor.
    """

    MAX_ROUNDS = 12

    def __init__(self, database, send, schema=None, cache_results=True,
                 nesting_strategy=FETCH_SUBTREE,
                 generalization=GENERALIZE_ANSWER,
                 executor=None, send_many=None, stale_on_error=False,
                 semcache=None):
        self.database = database
        self.send = send
        self.schema = schema
        self.cache_results = cache_results
        self.nesting_strategy = nesting_strategy
        self.generalization = generalization
        self.executor = resolve_executor(executor)
        self.send_many = send_many
        self.stale_on_error = stale_on_error
        #: Semantic caching policy: canonical keys, freshness buckets,
        #: and the aggregate-cache budget (see ``repro.core.semcache``).
        self.semcache = semcache if semcache is not None \
            else SemanticCacheConfig()
        self.aggregates = AggregateCache(database.clock,
                                         config=self.semcache)
        self._stats_lock = threading.Lock()
        self.stats = {
            "queries": 0,
            "rounds": 0,
            "subqueries_sent": 0,
            "local_hits": 0,
            "max_fanout": 0,
            "failed_subqueries": 0,
            "partial_gathers": 0,
            "stale_served": 0,
            "bucket_generalized": 0,
            "bucket_rechecks": 0,
            "prewarm_queries": 0,
            "replica_served": 0,
        }

    # ------------------------------------------------------------------
    def compile(self, query):
        if isinstance(query, CompiledPattern):
            return query
        return compile_pattern(query, schema=self.schema)

    def _view(self):
        if self.cache_results:
            return self.database
        overlay = SensorDatabase(
            self.database.root.copy(),
            clock=self.database.clock,
            site_id=self.database.site_id,
        )
        return overlay

    # ------------------------------------------------------------------
    def gather(self, query, now=None, nesting_strategy=None):
        """Gather everything *query* needs; returns a :class:`GatherOutcome`."""
        site = self.database.site_id
        with TRACER.span("gather", site=site) as gather_span:
            with TRACER.span("parse", site=site):
                pattern = self.compile(query)
            gather_span.set_tag("query", pattern.source)
            if now is None:
                now = self.database.clock()
            if nesting_strategy is None:
                nesting_strategy = self.nesting_strategy
            view = self._view()
            probe_results = {}
            answered = []
            answered_keys = set()
            # Freshness-bucketed dispatch bookkeeping: keys whose wire
            # ask was loosened to the bucket boundary, and those already
            # re-asked exactly once when the loosened answer fell short.
            bucketed_keys = set()
            escalated_keys = set()
            bucket_generalized = 0
            bucket_rechecks = 0
            sent = []
            failures = []
            replica_served = []
            rounds = 0
            max_fanout = 0
            result = None
            for rounds in range(1, self.MAX_ROUNDS + 1):
                with TRACER.span("qeg", site=site) as qeg_span:
                    qeg_span.set_tag("round", rounds)
                    result = run_qeg(view, pattern, now=now,
                                     probe_results=probe_results,
                                     nesting_strategy=nesting_strategy,
                                     generalization=self.generalization)
                # A subquery whose answer was already merged is resolved
                # -- and so is any narrower ask it subsumes: the
                # remote's generalized answer is authoritative for
                # everything its query could yield, so data still
                # missing locally (e.g. ID stubs that failed the
                # predicate remotely) simply does not match.
                pending = []
                for sq in result.subqueries:
                    key = (sq.query, sq.scalar)
                    if key in answered_keys:
                        if key in bucketed_keys and \
                                key not in escalated_keys:
                            # The bucket-loosened answer was merged but
                            # this subquery re-emerged: the data fails
                            # its original (tighter) bound.  Re-ask
                            # exactly, once -- the subsumption guarantee
                            # for bucketed wire asks.
                            escalated_keys.add(key)
                            bucket_rechecks += 1
                            pending.append(sq)
                        continue
                    if _subsumed_by(sq, answered, pattern):
                        continue
                    pending.append(sq)
                if not pending:
                    break
                max_fanout = max(max_fanout, len(pending))
                # Loosen eligible wire asks to their freshness-bucket
                # boundary so mid-tier caches coalesce near-identical
                # tolerances; replies merge with real timestamps, and
                # the escalation path above re-checks the exact bound.
                wire_round = [
                    self._wire_subquery(sq, bucketed_keys, escalated_keys)
                    for sq in pending
                ]
                bucket_generalized += sum(
                    1 for sq, wire in zip(pending, wire_round)
                    if wire is not sq
                )
                # Fan the round out (possibly in parallel / batched),
                # then merge the replies back in emission order: the
                # merged view -- and hence the final answer -- never
                # depends on reply arrival order.
                with TRACER.span("subquery-dispatch", site=site) as dspan:
                    dspan.set_tag("round", rounds)
                    dspan.set_tag("fanout", len(pending))
                    replies = self._dispatch_round(wire_round)
                with TRACER.span("merge", site=site) as merge_span:
                    merge_span.set_tag("round", rounds)
                    for subquery, reply in zip(pending, replies):
                        sent.append(subquery)
                        key = (subquery.query, subquery.scalar)
                        answered_keys.add(key)
                        if isinstance(reply, ReplicaServed):
                            # A replica answered for the dead owner; the
                            # replication layer already checked its
                            # stamp against the wire query's freshness
                            # bound, so the fragment merges like any
                            # owner answer.  The bucketed-key entry
                            # stays: if the copy fails the caller's
                            # exact (tighter) bound the escalation path
                            # re-asks -- and the re-ask's failover is
                            # judged at the exact bound.
                            replica_served.append(reply)
                            answered.append(subquery)
                            if subquery.scalar:
                                probe_results[subquery.query] = None
                            elif reply.fragment is not None:
                                view.store_fragment(reply.fragment)
                            continue
                        if isinstance(reply, SubqueryFailure):
                            # Terminal failure: record it, never re-ask
                            # (the key above suppresses re-emission),
                            # and degrade.  Deliberately NOT appended to
                            # ``answered``: a failed fetch is not
                            # authoritative for anything, so it must not
                            # subsume narrower asks.  A dead region is
                            # also never escalation-worthy.
                            bucketed_keys.discard(key)
                            self._note_failure(reply, subquery, view)
                            failures.append(reply)
                            if subquery.scalar:
                                probe_results[subquery.query] = None
                            continue
                        answered.append(subquery)
                        if subquery.scalar:
                            probe_results[subquery.query] = reply
                        elif reply is not None:
                            view.store_fragment(reply)
            else:
                raise GatherError(
                    f"gathering {pattern.source!r} did not converge within "
                    f"{self.MAX_ROUNDS} rounds"
                )
            gather_span.set_tag("rounds", rounds)
            gather_span.set_tag("subqueries", len(sent))
            with self._stats_lock:
                self.stats["queries"] += 1
                self.stats["rounds"] += rounds
                self.stats["subqueries_sent"] += len(sent)
                self.stats["max_fanout"] = max(self.stats["max_fanout"],
                                               max_fanout)
                if not sent:
                    self.stats["local_hits"] += 1
                self.stats["failed_subqueries"] += len(failures)
                self.stats["stale_served"] += sum(
                    1 for failure in failures if failure.stale_served)
                if any(not failure.stale_served for failure in failures):
                    self.stats["partial_gathers"] += 1
                self.stats["bucket_generalized"] += bucket_generalized
                self.stats["bucket_rechecks"] += bucket_rechecks
                self.stats["replica_served"] += len(replica_served)
            return GatherOutcome(pattern, result.answer, rounds, sent, view,
                                 failures=failures,
                                 replica_served=replica_served)

    def _note_failure(self, failure, subquery, view):
        """Classify a terminal failure: stale-servable or unreachable.

        The freshness relaxation only applies to STALE-reason asks --
        the cached copy of the region is fully materialized, merely
        older than the query's consistency bound -- and only when the
        driver opted into ``stale_on_error``.  Everything else stays
        unreachable and is excised from the final answer.
        """
        if not self.stale_on_error or subquery.reason != Subquery.STALE:
            return
        anchor = view.find(subquery.anchor_path)
        if anchor is not None and \
                get_status(anchor).has_local_information:
            failure.stale_served = True

    def _wire_subquery(self, subquery, bucketed_keys, escalated_keys):
        """The wire form of *subquery*: bucket-loosened when eligible.

        Non-scalar asks with bucketable freshness tolerances go out
        spelled at the bucket boundary, so every mid-tier cache between
        here and the owner sees one canonical ask per bucket instead of
        one per jittered tolerance.  Scalars (probes) and escalated
        re-asks always go out verbatim.
        """
        if not self.semcache.enabled or self.semcache.buckets is None:
            return subquery
        if subquery.scalar:
            return subquery
        key = (subquery.query, subquery.scalar)
        if key in escalated_keys:
            return subquery
        try:
            canon = canonicalize(subquery.query,
                                 buckets=self.semcache.buckets)
        except Exception:
            return subquery
        if not canon.bucketed:
            return subquery
        bucketed_keys.add(key)
        return Subquery(
            canon.bucket_key, subquery.anchor_path, subquery.reason,
            scalar=subquery.scalar, consumed=subquery.consumed,
            descendant_gap=subquery.descendant_gap,
            subtree=subquery.subtree,
        )

    def _dispatch_round(self, pending):
        """Send one round's subqueries; replies come back in input order."""
        if len(pending) == 1:
            return [self.send(pending[0])]
        if self.send_many is not None:
            return self.send_many(pending)
        # Executor threads do not inherit the caller's contextvars, so
        # carry the active span across explicitly: without this, spans
        # opened inside ``send`` would start fresh traces.
        return self.executor.map(propagate(self.send), pending)

    # ------------------------------------------------------------------
    def answer_user_query(self, query, now=None):
        """Answer a user query: gather, then extract clean result subtrees.

        Returns ``(results, outcome)`` where *results* is a list of
        detached, system-attribute-free elements (the XPath answer).
        Matches anchored in a region a subquery failed terminally for
        are excised: the extraction pass strips consistency predicates
        (freshness was enforced while gathering), so without the filter
        a stale cached copy whose refresh failed would silently pass as
        fresh -- the opposite of the paper's query-based consistency.
        """
        outcome = self.gather(query, now=now)
        if now is None:
            now = self.database.clock()
        matches = _EVALUATOR.evaluate(outcome.pattern.extraction_ast,
                                      outcome.view.root, now=now)
        unreachable = outcome.unreachable_paths
        results = []
        for match in matches if isinstance(matches, list) else []:
            if isinstance(match, Text):
                if self._in_unreachable_region(match.parent, unreachable):
                    continue
                results.append(Text(match.value))
                continue
            if not isinstance(match, Element):
                continue
            if self._in_unreachable_region(match, unreachable):
                continue
            anchor = lowest_idable_ancestor_or_self(match)
            if not get_status(anchor).has_local_information:
                continue  # an ID stub, not real data
            if anchor is match and not _subtree_materialized(match):
                continue  # partially gathered artifact
            results.append(strip_internal_attributes(match.copy()))
        return results, outcome

    @staticmethod
    def _in_unreachable_region(element, unreachable):
        """Whether *element* overlaps a region whose fetch failed.

        Both directions matter: a failed ask *above* the match means
        the match's data may be stale/partial, and a failed ask *below*
        it means part of the match's subtree is; either way the match
        cannot be vouched for.
        """
        if not unreachable or element is None:
            return False
        anchor = lowest_idable_ancestor_or_self(element)
        anchor_path = tuple(tuple(entry) for entry in id_path_of(anchor))
        return any(
            _is_path_prefix(failed, anchor_path)
            or _is_path_prefix(anchor_path, failed)
            for failed in unreachable
        )

    def answer_subquery(self, query, now=None):
        """Answer a subquery from a peer site: the generalized wire fragment."""
        outcome = self.gather(query, now=now)
        return outcome.wire_answer

    def answer_scalar(self, query, now=None, max_age=None, precision=None):
        """Answer a scalar query: a supported wrapper around an inner path.

        Supports ``boolean(p)``, ``count(p)``, ``sum(p)``, ``string(p)``
        and ``number(p)`` where ``p`` is an absolute location path:
        the inner path is gathered distributedly and the wrapper is
        evaluated over the assembled data.

        *max_age* (seconds) or *precision* (fraction, needs the
        aggregate cache's drift rate) opt into the paper's "acceptable
        precision" extension: a recent enough cached value of the same
        aggregate is returned without touching the network (Section 4).
        """
        canon = None
        if self.semcache.enabled:
            canon = canonicalize(query, buckets=self.semcache.buckets)
            # Cache identity is the *bucketed* canonical form -- every
            # jitter-equivalent spelling and near-identical tolerance
            # shares one entry -- while the exact key and the original
            # (tightest) tolerance feed the coalesce accounting and the
            # serve-time subsumption check.
            query_key = canon.bucket_key
            exact_key = canon.key
            tolerance = canon.min_tolerance
        else:
            query_key = query if isinstance(query, str) else query.unparse()
            exact_key = query_key
            tolerance = None
        if max_age is not None or precision is not None:
            with TRACER.span("cache-lookup",
                             site=self.database.site_id) as lookup_span:
                cached = self.aggregates.lookup(query_key, max_age=max_age,
                                                precision=precision,
                                                exact_key=exact_key,
                                                tolerance=tolerance)
                lookup_span.set_tag("hit", cached is not None)
            if cached is not None:
                return cached.value
        if canon is not None:
            ast = canon.ast
        else:
            ast = xpath_parser.parse(query) if isinstance(query, str) \
                else query
            # The wrapper is evaluated over the gathered view from this
            # ast directly (compile only rewrites the gathered path), so
            # de-sugar here too -- otherwise ``timestamp``/``now`` sugar
            # would be read as child-element name tests.
            ast = rewrite_consistency_sugar(ast)
        if not (
            isinstance(ast, FunctionCall)
            and ast.name in SCALAR_WRAPPERS
            and len(ast.arguments) == 1
            and isinstance(ast.arguments[0], LocationPath)
            and ast.arguments[0].absolute
        ):
            raise CoreError(
                f"unsupported scalar query {query!r}: expected "
                f"{'/'.join(SCALAR_WRAPPERS)} around an absolute path"
            )
        # Probes must be resolved by materializing data, never by
        # re-probing (the answering site may own the probe's anchor,
        # which would loop): force the fetch-subtree strategy here.
        outcome = self.gather(ast.arguments[0], now=now,
                              nesting_strategy=FETCH_SUBTREE)
        if now is None:
            now = self.database.clock()
        value = _EVALUATOR.evaluate(ast, outcome.view.root, now=now)
        self.aggregates.store(query_key, value, exact_key=exact_key,
                              tolerance=tolerance)
        return value

    def note_prewarm(self):
        """Account one replayed prewarm query (see semcache.prewarm)."""
        with self._stats_lock:
            self.stats["prewarm_queries"] += 1

    def semcache_counters(self):
        """Semantic-cache counters for the metrics registry / EXPLAIN.

        Per-site: the driver's bucket/prewarm counters and the
        aggregate cache's hit/miss/coalesce/byte figures.  The
        canonicalizer memo is process-wide and tagged as such.
        """
        with self._stats_lock:
            counters = {
                key: self.stats[key]
                for key in ("bucket_generalized", "bucket_rechecks",
                            "prewarm_queries")
            }
        counters["enabled"] = self.semcache.enabled
        counters["aggregate"] = self.aggregates.metrics()
        counters["canonicalizer"] = dict(canonicalization_stats(),
                                         scope="process")
        return counters

    def answer_any(self, query, now=None):
        """Dispatch a query string to subquery/scalar handling.

        Used by the network layer when a message arrives from a peer.
        """
        ast = xpath_parser.parse(query)
        if isinstance(ast, LocationPath):
            return self.answer_subquery(ast, now=now)
        return self.answer_scalar(ast, now=now)
