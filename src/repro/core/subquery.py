"""Construction of subquery strings from ID paths and residual steps.

Subqueries are rebuilt from the original query's AST (never by string
surgery), pinned to an anchor node via its root-to-node ID path --
exactly the information invariant I2 guarantees a site to have for any
node it must contact (Section 3.4, "Sending a subquery").
"""

from repro.xpath.ast import (
    BinaryOperation,
    Literal,
    LocationPath,
    NameTest,
    Step,
)


def id_pin_predicate(identifier):
    """The ``@id = '...'`` predicate pinning one id value."""
    return BinaryOperation(
        "=",
        LocationPath(absolute=False,
                     steps=[Step("attribute", NameTest("id"))]),
        Literal(identifier),
    )


def id_path_steps(id_path, last_extra_predicates=()):
    """AST steps for an ID path, each pinned by an id predicate.

    *last_extra_predicates* are appended to the final step -- used to
    re-attach the residual (non-id) predicates of the step that matched
    the anchor node.
    """
    steps = []
    entries = list(id_path)
    for index, (tag, identifier) in enumerate(entries):
        predicates = [id_pin_predicate(identifier)]
        if index == len(entries) - 1:
            predicates.extend(last_extra_predicates)
        steps.append(Step("child", NameTest(tag), predicates))
    return steps


def render_id_path_query(id_path, extra_predicates=()):
    """An absolute query selecting exactly the node at *id_path*.

    The answer to this query is the node's whole subtree -- the
    "fetch all the data under that block" subquery of Section 4.
    """
    path = LocationPath(absolute=True,
                        steps=id_path_steps(id_path, extra_predicates))
    return path.unparse()


def render_residual_query(anchor_id_path, anchor_extra_predicates,
                          residual_items, descendant_gap=False,
                          aggressive=False):
    """The subquery for continuing a partially evaluated query.

    ``anchor_id_path`` pins the node where local evaluation stopped;
    ``anchor_extra_predicates`` re-attach the predicates of the
    anchor's own step that could not be (or must be re-) evaluated
    locally; ``residual_items`` are the remaining pattern items (see
    :mod:`repro.core.qeg`); ``descendant_gap`` inserts ``//`` between
    the anchor and the first residual item, used when evaluation
    stopped while scanning for a descendant match.

    With ``aggressive=True`` the residual items carry only their id and
    consistency predicates: the subquery fetches a *superset* of the
    answer (all siblings' local information), trading bandwidth for a
    cache that can answer any later predicate over the same data -- the
    strong reading of Section 3.3's subquery generalization.
    """
    steps = id_path_steps(anchor_id_path, anchor_extra_predicates)
    for index, item in enumerate(residual_items):
        if item.descendant or (descendant_gap and index == 0):
            steps.append(_descendant_gap_step())
        predicates = (item.generalized_predicates if aggressive
                      else list(item.step.predicates))
        steps.append(Step("child", item.step.node_test, predicates))
    path = LocationPath(absolute=True, steps=steps)
    return path.unparse()


def _descendant_gap_step():
    from repro.xpath.ast import NodeTypeTest

    return Step("descendant-or-self", NodeTypeTest("node"))


def render_boolean_probe(anchor_id_path, predicate):
    """A scalar probe: ``boolean(/<anchor>[predicate])``.

    This is the paper's proposed alternative for nesting depth > 0:
    evaluate the nested predicate remotely instead of fetching the
    whole subtree (Section 4, "Larger nesting depths").
    """
    from repro.xpath.ast import FunctionCall

    steps = id_path_steps(anchor_id_path, [predicate])
    path = LocationPath(absolute=True, steps=steps)
    return FunctionCall("boolean", [path]).unparse()
