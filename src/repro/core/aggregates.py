"""Aggregate queries with freshness/precision tolerance (Section 4).

The paper extends query-based consistency to "acceptable precision,
based on certain aggregate attributes of the data": e.g. a query for
the number of available parking spots in a city may accept a 10%
tolerance rather than an exact, fully fresh count.

Implementation: scalar answers (count/sum/boolean over a region) are
cached per query with the clock reading at which they were computed.
A tolerant query supplies a ``max_age``; a cached value no older than
that is returned without touching the network.  The mapping from the
paper's value-based tolerance to this time-based bound is the standard
drift argument: if the aggregate changes at most ``r`` fraction per
second (a property of the sensor process), a ``p`` precision tolerance
is honoured by ``max_age = p / r``.  :class:`AggregateCache` exposes
exactly that conversion.
"""


from repro.core.semcache import SemanticCache, SemanticCacheConfig

#: Back-compat alias: lookups return :class:`~repro.core.semcache.CacheEntry`
#: objects, which carry the same ``value``/``computed_at``/``age(now)``
#: surface the old CachedScalar did.
from repro.core.semcache import CacheEntry as CachedScalar  # noqa: F401


class AggregateCache:
    """Freshness-bounded cache of scalar query answers for one site.

    Since the semantic-cache work this is a thin clock-aware veneer
    over :class:`~repro.core.semcache.SemanticCache`: size-aware LRU
    with measured admission/eviction instead of unbounded growth.  Keys
    are whatever the caller supplies -- the gather driver passes
    (bucketed) canonical keys plus the exact spelling for coalesce
    accounting; raw strings keep working for direct users.
    """

    def __init__(self, clock, drift_rate=None, config=None):
        """*drift_rate*: maximum fractional change of aggregates per
        second, used to convert precision tolerances into ages; without
        it only explicit ``max_age`` bounds are accepted.  *config* is
        a :class:`~repro.core.semcache.SemanticCacheConfig` governing
        budget and admission."""
        self.clock = clock
        self.drift_rate = drift_rate
        self.cache = SemanticCache(config or SemanticCacheConfig())
        self.stats = self.cache.stats

    # ------------------------------------------------------------------
    def max_age_for_precision(self, precision):
        """The staleness bound honouring a fractional *precision*."""
        if self.drift_rate is None or self.drift_rate <= 0:
            raise ValueError(
                "precision tolerances need a configured drift_rate"
            )
        return precision / self.drift_rate

    # ------------------------------------------------------------------
    def lookup(self, query, max_age=None, precision=None, exact_key=None,
               tolerance=None):
        """A cached value fresh enough for the given tolerance, or None.

        *exact_key* and *tolerance* feed the semantic cache's
        subsumption check when *query* is a bucket-shared key: a hit
        under a different exact key counts as bucket-coalesced, and the
        allowed age shrinks by any tolerance slack the stored entry
        carries over this query (see ``SemanticCache.lookup``).
        """
        if max_age is None and precision is not None:
            max_age = self.max_age_for_precision(precision)
        return self.cache.lookup(query, self.clock(), max_age=max_age,
                                 exact_key=exact_key, tolerance=tolerance)

    def store(self, query, value, exact_key=None, tolerance=None):
        return self.cache.store(query, value, self.clock(),
                                exact_key=exact_key, tolerance=tolerance)

    def invalidate(self, query=None):
        self.cache.invalidate(query)

    def evict_paths(self, id_paths):
        """Evict every cached aggregate overlapping one of *id_paths*.

        Keys are canonical query strings; an entry overlaps when its
        anchor id path is at/below one of the given paths (it was
        computed from the migrated region) or strictly above one
        (its value folded the migrated region in).  Unparseable or
        anchorless keys are left alone.  Returns the eviction count.
        """
        from repro.xpath.analysis import anchor_id_path

        targets = [tuple(tuple(entry) for entry in path)
                   for path in id_paths]

        def overlaps(key):
            anchor = anchor_id_path(key)
            if anchor is None:
                return False
            return any(anchor[:len(path)] == path
                       or path[:len(anchor)] == anchor
                       for path in targets)

        return self.cache.evict_matching(overlaps)

    def metrics(self):
        """Registry-facing snapshot (counters + byte/entry gauges)."""
        return self.cache.metrics()

    def __len__(self):
        return len(self.cache)
