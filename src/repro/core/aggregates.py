"""Aggregate queries with freshness/precision tolerance (Section 4).

The paper extends query-based consistency to "acceptable precision,
based on certain aggregate attributes of the data": e.g. a query for
the number of available parking spots in a city may accept a 10%
tolerance rather than an exact, fully fresh count.

Implementation: scalar answers (count/sum/boolean over a region) are
cached per query with the clock reading at which they were computed.
A tolerant query supplies a ``max_age``; a cached value no older than
that is returned without touching the network.  The mapping from the
paper's value-based tolerance to this time-based bound is the standard
drift argument: if the aggregate changes at most ``r`` fraction per
second (a property of the sensor process), a ``p`` precision tolerance
is honoured by ``max_age = p / r``.  :class:`AggregateCache` exposes
exactly that conversion.
"""


class CachedScalar:
    """One cached aggregate value."""

    __slots__ = ("value", "computed_at")

    def __init__(self, value, computed_at):
        self.value = value
        self.computed_at = computed_at

    def age(self, now):
        return now - self.computed_at

    def __repr__(self):
        return f"CachedScalar({self.value!r} @ {self.computed_at:.1f})"


class AggregateCache:
    """Freshness-bounded cache of scalar query answers for one site."""

    def __init__(self, clock, drift_rate=None):
        """*drift_rate*: maximum fractional change of aggregates per
        second, used to convert precision tolerances into ages; without
        it only explicit ``max_age`` bounds are accepted."""
        self.clock = clock
        self.drift_rate = drift_rate
        self._entries = {}
        self.stats = {"hits": 0, "misses": 0, "stores": 0}

    # ------------------------------------------------------------------
    def max_age_for_precision(self, precision):
        """The staleness bound honouring a fractional *precision*."""
        if self.drift_rate is None or self.drift_rate <= 0:
            raise ValueError(
                "precision tolerances need a configured drift_rate"
            )
        return precision / self.drift_rate

    # ------------------------------------------------------------------
    def lookup(self, query, max_age=None, precision=None):
        """A cached value fresh enough for the given tolerance, or None."""
        if max_age is None and precision is not None:
            max_age = self.max_age_for_precision(precision)
        if max_age is None:
            self.stats["misses"] += 1
            return None
        entry = self._entries.get(query)
        if entry is not None and entry.age(self.clock()) <= max_age:
            self.stats["hits"] += 1
            return entry
        self.stats["misses"] += 1
        return None

    def store(self, query, value):
        entry = CachedScalar(value, self.clock())
        self._entries[query] = entry
        self.stats["stores"] += 1
        return entry

    def invalidate(self, query=None):
        if query is None:
            self._entries.clear()
        else:
            self._entries.pop(query, None)

    def __len__(self):
        return len(self._entries)
