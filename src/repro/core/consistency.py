"""Query-based consistency (Section 4 of the paper).

Queries may bound the staleness of the data used to answer them, per
element, with ordinary predicates over timestamps:

    /.../block[@id='1'][timestamp() > current-time() - 30]/parkingSpace

means "data for this block must be at most 30 seconds old".  The QEG
walker ignores such predicates at *owned* nodes (the owner is always
freshest -- so users always get an answer), honours them at *complete*
(cached) nodes, and falls back to asking the owner when a cached copy
is too stale.

The paper's figures write the sugar form ``[timestamp > now - 30]``;
:func:`rewrite_consistency_sugar` converts it to the canonical
function-call form.
"""

from repro.xpath.analysis import REF_CONSISTENCY, classify_predicate
from repro.xpath.ast import (
    BinaryOperation,
    FilterExpression,
    FunctionCall,
    LocationPath,
    NameTest,
    NumberLiteral,
    Step,
    UnaryMinus,
)

_SUGAR_NAMES = {"timestamp": "timestamp", "now": "current-time"}


def transform_expression(expression, fn):
    """Rebuild an expression bottom-up, applying *fn* to every node.

    *fn* receives each rebuilt node and returns its replacement (or the
    node itself).  The input tree is never mutated.
    """
    rebuilt = _rebuild(expression, fn)
    return fn(rebuilt)


def _rebuild(expression, fn):
    recurse = lambda child: transform_expression(child, fn)  # noqa: E731
    if isinstance(expression, LocationPath):
        return LocationPath(
            expression.absolute,
            [_rebuild_step(step, fn) for step in expression.steps],
        )
    if isinstance(expression, FilterExpression):
        path = None
        if expression.path is not None:
            path = transform_expression(expression.path, fn)
        return FilterExpression(
            recurse(expression.primary),
            [recurse(p) for p in expression.predicates],
            path,
        )
    if isinstance(expression, BinaryOperation):
        return BinaryOperation(expression.operator,
                               recurse(expression.left),
                               recurse(expression.right))
    if isinstance(expression, UnaryMinus):
        return UnaryMinus(recurse(expression.operand))
    if isinstance(expression, FunctionCall):
        return FunctionCall(expression.name,
                            [recurse(a) for a in expression.arguments])
    # Literals, numbers, variables, name tests: immutable leaves.
    return expression


def _rebuild_step(step, fn):
    return Step(step.axis, step.node_test,
                [transform_expression(p, fn) for p in step.predicates])


# ----------------------------------------------------------------------
# Sugar
# ----------------------------------------------------------------------
def _is_bare_child_path(expression, name):
    return (
        isinstance(expression, LocationPath)
        and not expression.absolute
        and len(expression.steps) == 1
        and expression.steps[0].axis == "child"
        and isinstance(expression.steps[0].node_test, NameTest)
        and expression.steps[0].node_test.name == name
        and not expression.steps[0].predicates
    )


def rewrite_consistency_sugar(expression):
    """Rewrite ``timestamp``/``now`` sugar into canonical function calls.

    ``timestamp`` and ``now`` appearing as bare child paths inside a
    comparison become ``timestamp()`` and ``current-time()``.  Other
    uses (e.g. an element genuinely named ``timestamp`` addressed as
    ``./timestamp``) are untouched because the sugar applies only to
    single-step bare names in comparison operands.
    """

    def fix_operand(operand):
        for name, function in _SUGAR_NAMES.items():
            if _is_bare_child_path(operand, name):
                return FunctionCall(function, [])
        if isinstance(operand, BinaryOperation) and \
                operand.operator in ("+", "-"):
            return BinaryOperation(operand.operator,
                                   fix_operand(operand.left),
                                   fix_operand(operand.right))
        return operand

    def visit(node):
        if isinstance(node, BinaryOperation) and \
                node.operator in ("<", "<=", ">", ">=", "=", "!="):
            return BinaryOperation(node.operator,
                                   fix_operand(node.left),
                                   fix_operand(node.right))
        return node

    return transform_expression(expression, visit)


# ----------------------------------------------------------------------
# Stripping (for final answer extraction)
# ----------------------------------------------------------------------
def _iter_conjuncts(expression):
    if isinstance(expression, BinaryOperation) and expression.operator == "and":
        yield from _iter_conjuncts(expression.left)
        yield from _iter_conjuncts(expression.right)
    else:
        yield expression


def _without_consistency(predicates):
    kept = []
    for predicate in predicates:
        conjuncts = [
            c for c in _iter_conjuncts(predicate)
            if classify_predicate(c) != frozenset({REF_CONSISTENCY})
        ]
        if not conjuncts:
            continue
        rebuilt = conjuncts[0]
        for conjunct in conjuncts[1:]:
            rebuilt = BinaryOperation("and", rebuilt, conjunct)
        kept.append(rebuilt)
    return kept


def strip_consistency_predicates(expression):
    """Remove consistency predicates from every step of *expression*.

    Used when re-extracting the final answer from gathered data: the
    gather phase already enforced freshness by routing around stale
    caches, and owner-fetched data must not be re-filtered (the owner's
    copy is returned even when older than the tolerance, so that "users
    get an answer").
    """

    def visit(node):
        if isinstance(node, LocationPath):
            return LocationPath(
                node.absolute,
                [
                    Step(step.axis, step.node_test,
                         _without_consistency(step.predicates))
                    for step in node.steps
                ],
            )
        return node

    return transform_expression(expression, visit)


def has_consistency_predicates(expression):
    """Whether any predicate in the query constrains freshness."""
    from repro.xpath.ast import walk

    for node in walk(expression):
        if isinstance(node, (LocationPath, FilterExpression)):
            steps = node.steps if isinstance(node, LocationPath) else ()
            for step in steps:
                for predicate in step.predicates:
                    for conjunct in _iter_conjuncts(predicate):
                        if classify_predicate(conjunct) == \
                                frozenset({REF_CONSISTENCY}):
                            return True
    return False


def bucket_consistency_tolerances(expression, bucket_fn):
    """Coarsen every freshness tolerance in *expression* via *bucket_fn*.

    Each canonical-shape consistency conjunct
    ``timestamp() > current-time() - N`` is replaced by the same
    predicate with ``bucket_fn(N)`` (its bucket ceiling).  Returns
    ``(new_expression, tolerances)`` where *tolerances* lists each
    ``(original, bucketed)`` pair in document order.  Coarsening only
    ever *loosens* the wire/key form; serving data under the loosened
    key must still re-check the original bound (the subsumption check
    -- see ``repro.core.semcache``).
    """
    tolerances = []

    def bucket_conjuncts(predicate):
        changed = False
        rebuilt = []
        for conjunct in _iter_conjuncts(predicate):
            seconds = extract_tolerance(conjunct)
            if seconds is not None and classify_predicate(conjunct) == \
                    frozenset({REF_CONSISTENCY}):
                bucketed = bucket_fn(seconds)
                tolerances.append((seconds, bucketed))
                if bucketed != seconds:
                    conjunct = tolerance_predicate(bucketed)
                    changed = True
            rebuilt.append(conjunct)
        if not changed:
            return predicate
        combined = rebuilt[0]
        for conjunct in rebuilt[1:]:
            combined = BinaryOperation("and", combined, conjunct)
        return combined

    def visit(node):
        if isinstance(node, LocationPath):
            return LocationPath(
                node.absolute,
                [
                    Step(step.axis, step.node_test,
                         [bucket_conjuncts(p) for p in step.predicates])
                    for step in node.steps
                ],
            )
        return node

    return transform_expression(expression, visit), tolerances


def tolerance_predicate(seconds):
    """Build the canonical freshness predicate for *seconds* tolerance."""
    return BinaryOperation(
        ">",
        FunctionCall("timestamp", []),
        BinaryOperation("-", FunctionCall("current-time", []),
                        NumberLiteral(seconds)),
    )


def extract_tolerance(predicate):
    """The tolerance in seconds if *predicate* has the canonical shape.

    Recognizes ``timestamp() > current-time() - N`` (and the mirrored
    form); returns ``None`` otherwise.
    """
    if not isinstance(predicate, BinaryOperation):
        return None
    left, operator, right = predicate.left, predicate.operator, predicate.right
    if operator == "<" :
        left, right = right, left
        operator = ">"
    if operator != ">":
        return None
    if not (isinstance(left, FunctionCall) and left.name == "timestamp"):
        return None
    if (
        isinstance(right, BinaryOperation)
        and right.operator == "-"
        and isinstance(right.left, FunctionCall)
        and right.left.name == "current-time"
        and isinstance(right.right, NumberLiteral)
    ):
        return right.right.value
    return None
