"""Exception hierarchy for the core fragmentation/caching/QEG layer."""


class CoreError(Exception):
    """Base class for all errors raised by :mod:`repro.core`."""


class PartitionError(CoreError):
    """Raised when a requested partitioning violates the ownership rules.

    The paper permits arbitrary ownership sets subject to two
    constraints: every node has exactly one owner, and only IDable
    nodes may be owned separately from their parent (Section 3.2).
    """


class InvariantViolation(CoreError):
    """Raised (or collected) when a site database violates I1/I2/C1/C2."""


class UnknownNodeError(CoreError):
    """Raised when an ID path does not resolve to a node."""


class CacheError(CoreError):
    """Raised when a fragment cannot be cached without breaking invariants."""


class QueryRoutingError(CoreError):
    """Raised when a query cannot be routed to a responsible site."""


class UnsupportedDistributedQueryError(CoreError):
    """Raised for queries whose *main* path cannot be evaluated distributedly.

    The single-site evaluator supports the full unordered fragment; the
    distributed walker additionally requires the main location path to
    descend the hierarchy (child and ``//`` steps).
    """
