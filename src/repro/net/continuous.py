"""Continuous queries (the extension sketched in Section 7).

"Continuous queries are an important class of queries that are natural
to a sensor database system.  Our architecture naturally allows us to
support continuous queries through the various data structures that we
maintain" -- and indeed nothing new is needed: a continuous query is an
ordinary XPATH query registered at its LCA's owner; whenever a sensor
update lands inside the query's region, the query is re-evaluated with
the existing gather machinery and the subscriber is notified if the
answer changed.

Scope (it is an extension sketch, like the paper's): a subscription
fires on updates processed by its hosting OA.  When the query's region
spans nodes owned elsewhere, their updates are seen on the next
re-evaluation triggered by a local update; full push-invalidations
would need downstream interest registration, which the paper defers to
its view-based semantic caching future work.
"""

import itertools

from repro.obs.tracing import TRACER
from repro.xmlkit.compare import canonical_form
from repro.xpath import parser as xpath_parser
from repro.xpath.analysis import extract_id_path

_SEQUENCE = itertools.count(1)


class Subscription:
    """One registered continuous query.

    ``last_trace`` holds the trace context of the evaluation behind the
    most recent notification (``None`` while tracing is off), so a
    subscriber can pull the full distributed trace of the gather that
    produced what it was just told.
    """

    __slots__ = ("subscription_id", "query", "anchor_path", "callback",
                 "last_digest", "notifications", "last_trace")

    def __init__(self, query, anchor_path, callback):
        self.subscription_id = next(_SEQUENCE)
        self.query = query
        self.anchor_path = tuple(tuple(entry) for entry in anchor_path)
        self.callback = callback
        self.last_digest = None
        self.notifications = 0
        self.last_trace = None

    def covers(self, id_path):
        """Whether an update at *id_path* can affect this query.

        The query's region is the subtree below its pinned LCA prefix;
        an update inside that subtree (or to one of the LCA's ancestors'
        local information) may change the answer.
        """
        id_path = tuple(tuple(entry) for entry in id_path)
        shorter = min(len(self.anchor_path), len(id_path))
        return self.anchor_path[:shorter] == id_path[:shorter]

    def __repr__(self):
        return (
            f"Subscription(#{self.subscription_id}, {self.query!r}, "
            f"notified={self.notifications})"
        )


class ContinuousQueryManager:
    """Per-OA registry of continuous queries, driven by updates."""

    def __init__(self, agent):
        self.agent = agent
        self._subscriptions = {}
        self.stats = {"evaluations": 0, "notifications": 0,
                      "callback_errors": 0}

    def subscribe(self, query, callback, fire_immediately=True):
        """Register *query*; *callback(results)* runs on every change.

        With *fire_immediately* the callback also receives the initial
        answer right away.
        """
        ast = xpath_parser.parse(query)
        anchor_path = extract_id_path(ast)
        subscription = Subscription(query, anchor_path, callback)
        self._subscriptions[subscription.subscription_id] = subscription
        if fire_immediately:
            self._evaluate(subscription)
        return subscription.subscription_id

    def unsubscribe(self, subscription_id):
        self._subscriptions.pop(subscription_id, None)

    def __len__(self):
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    def on_update(self, id_path):
        """Called by the OA after it applied a sensor update."""
        for subscription in list(self._subscriptions.values()):
            if subscription.covers(id_path):
                self._evaluate(subscription)

    def _evaluate(self, subscription):
        self.stats["evaluations"] += 1
        with TRACER.span(
                "continuous-eval", site=self.agent.site_id,
                tags={"query": subscription.query,
                      "subscription": subscription.subscription_id},
        ) as span:
            results, _outcome = self.agent.driver.answer_user_query(
                subscription.query)
            digest = tuple(sorted(
                canonical_form(r) for r in results if hasattr(r, "tag")
            ))
            if digest != subscription.last_digest:
                subscription.last_digest = digest
                subscription.notifications += 1
                self.stats["notifications"] += 1
                # The callback runs under the evaluation span: anything
                # the subscriber traces links into the gather's trace.
                # A failing subscriber (e.g. a derived sensor whose
                # re-evaluation needs an unreachable site) must not
                # take the owner's update path down with it.
                subscription.last_trace = span.context
                try:
                    subscription.callback(results)
                except Exception:
                    self.stats["callback_errors"] += 1
