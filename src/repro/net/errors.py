"""Exception hierarchy for the network substrate."""


class NetError(Exception):
    """Base class for all errors raised by :mod:`repro.net`."""


class NameNotFound(NetError):
    """Raised when a DNS name has no record."""


class UnknownSite(NetError):
    """Raised when a message addresses a site that does not exist."""


class MessageError(NetError):
    """Raised when a message cannot be encoded or decoded."""


class FrameTooLarge(NetError):
    """A frame's length prefix exceeds the configured limit.

    The stream cannot be resynchronised past a lying length prefix, so
    the connection is closed after the structured ``frame-too-large``
    error reply; ``length`` carries the offending size.
    """

    def __init__(self, length, limit=None):
        detail = f"frame of {length} bytes exceeds the limit"
        if limit is not None:
            detail += f" ({limit})"
        super().__init__(detail)
        self.length = length
        self.limit = limit


class MigrationError(NetError):
    """Raised when an ownership migration cannot be carried out."""


class RemoteError(NetError):
    """A peer replied with a structured :class:`ErrorMessage`.

    ``retryable`` mirrors the wire flag: a transient failure (injected
    fault, transport hiccup at the remote) may be retried, a
    deterministic one (handler bug, undecodable request) will fail
    again and should not burn the attempt budget.
    """

    def __init__(self, code, detail="", retryable=True, site=None):
        location = f"site {site!r} " if site is not None else ""
        super().__init__(f"{location}replied error {code!r}: {detail}")
        self.code = code
        self.detail = detail
        self.retryable = retryable
        self.site = site


class CircuitOpenError(NetError):
    """A send was refused locally because the peer's circuit is open."""
