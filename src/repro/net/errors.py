"""Exception hierarchy for the network substrate."""


class NetError(Exception):
    """Base class for all errors raised by :mod:`repro.net`."""


class NameNotFound(NetError):
    """Raised when a DNS name has no record."""


class UnknownSite(NetError):
    """Raised when a message addresses a site that does not exist."""


class MessageError(NetError):
    """Raised when a message cannot be encoded or decoded."""


class MigrationError(NetError):
    """Raised when an ownership migration cannot be carried out."""
