"""Distributed substrate: DNS, transport, organizing and sensing agents.

The paper's deployment -- organizing agents on Internet-connected PCs,
sensor proxies feeding them, DNS carrying the node-to-site mapping --
rebuilt in-process with deterministic loopback delivery (and a locking
variant for genuinely concurrent execution).  The fault layer --
retries with deterministic backoff, per-peer circuit breakers, partial
answers and the seeded :class:`FaultyNetwork` -- lives in
:mod:`repro.net.retry` and :mod:`repro.net.faults`.
"""

from repro.net.cluster import Cluster
from repro.net.continuous import ContinuousQueryManager, Subscription
from repro.net.dns import DnsRecord, DnsResolver, DnsServer
from repro.net.aioruntime import AsyncSiteServer, PipelinedTcpNetwork
from repro.net.errors import (
    CircuitOpenError,
    FrameTooLarge,
    MessageError,
    MigrationError,
    NameNotFound,
    NetError,
    RemoteError,
    UnknownSite,
)
from repro.net.faults import FaultyNetwork, InjectedFault, SiteDown
from repro.net.framing import FrameAssembler, FrameReader
from repro.net.messages import (
    AckMessage,
    AdoptMessage,
    AnswerMessage,
    BatchAnswerMessage,
    BatchQueryMessage,
    ErrorMessage,
    Message,
    QueryMessage,
    RehydrateAnswer,
    RehydrateRequest,
    ReplicateMessage,
    UpdateMessage,
    clean_results,
)
from repro.net.oa import OAConfig, OrganizingAgent
from repro.net.retry import (
    BreakerPolicy,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    SiteHealthTracker,
)
from repro.net.runtime import (
    ClientWorkloadResult,
    LockingNetwork,
    make_concurrent_cluster,
    run_concurrent_clients,
)
from repro.net.sa import RandomSensorModel, SensingAgent
from repro.net.tcpruntime import TcpCluster, TcpNetwork, TcpSiteServer
from repro.net.transport import LoopbackNetwork, TrafficLog

__all__ = [
    "Cluster",
    "ContinuousQueryManager",
    "Subscription",
    "OrganizingAgent",
    "OAConfig",
    "SensingAgent",
    "RandomSensorModel",
    "DnsServer",
    "DnsResolver",
    "DnsRecord",
    "LoopbackNetwork",
    "LockingNetwork",
    "TcpCluster",
    "TcpNetwork",
    "TcpSiteServer",
    "AsyncSiteServer",
    "PipelinedTcpNetwork",
    "FrameAssembler",
    "FrameReader",
    "TrafficLog",
    "FaultyNetwork",
    "InjectedFault",
    "SiteDown",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "SiteHealthTracker",
    "Deadline",
    "Message",
    "QueryMessage",
    "AnswerMessage",
    "BatchQueryMessage",
    "BatchAnswerMessage",
    "ErrorMessage",
    "UpdateMessage",
    "AckMessage",
    "AdoptMessage",
    "ReplicateMessage",
    "RehydrateRequest",
    "RehydrateAnswer",
    "clean_results",
    "make_concurrent_cluster",
    "run_concurrent_clients",
    "ClientWorkloadResult",
    "NetError",
    "FrameTooLarge",
    "NameNotFound",
    "UnknownSite",
    "MessageError",
    "MigrationError",
    "RemoteError",
    "CircuitOpenError",
]
