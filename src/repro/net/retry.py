"""Retry, deadline and circuit-breaking policy for distributed sends.

Wide-area deployments see flaky links, slow sites and stale DNS; the
paper's gather loop assumes none of that.  This module supplies the
policy objects the organizing agent's fan-out uses to survive it:

:class:`RetryPolicy`
    capped exponential backoff with *deterministic* jitter -- the
    jitter fraction is a hash of (key, attempt), not RNG state, so a
    schedule is reproducible across runs, processes and thread
    interleavings;
:class:`Deadline`
    a wall-clock budget for one dispatch's whole attempt loop;
:class:`CircuitBreaker` / :class:`SiteHealthTracker`
    the classic closed -> open -> half-open state machine, one breaker
    per peer site, so a down site is skipped fast instead of
    re-timing-out on every gather round.

Everything takes an injectable clock/sleep so tests and the simulator
stay deterministic.
"""

import hashlib
import threading
import time


def hash_fraction(*parts):
    """A deterministic pseudo-random fraction in ``[0, 1)`` from *parts*.

    Built on BLAKE2 rather than ``hash()`` so the value survives
    ``PYTHONHASHSEED`` randomization -- fault schedules and jitter must
    reproduce across processes.
    """
    digest = hashlib.blake2b(
        "\x1f".join(repr(part) for part in parts).encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attempts are numbered from 1.  :meth:`backoff` is the delay *after*
    the given failed attempt: ``base_delay * multiplier**(attempt-1)``,
    capped at ``max_delay``, then scaled into
    ``[delay * (1 - jitter), delay]`` by the hash of ``(key, attempt)``.
    ``deadline`` (seconds, optional) bounds one dispatch's whole
    attempt loop -- backoff sleeps are clamped to the remaining budget
    and no new attempt starts past it.  *sleep* is injectable so tests
    retry without wall-clock cost.
    """

    def __init__(self, max_attempts=3, base_delay=0.02, multiplier=2.0,
                 max_delay=1.0, jitter=0.5, deadline=None, sleep=time.sleep):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.deadline = deadline
        self.sleep = sleep

    def backoff(self, attempt, key=None):
        """The delay (seconds) after failed attempt number *attempt*."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        if not self.jitter or not delay:
            return delay
        fraction = hash_fraction("backoff", key, attempt)
        return delay * (1.0 - self.jitter * fraction)

    def schedule(self, key=None):
        """Every backoff delay of one dispatch, in order (for tests/docs)."""
        return [self.backoff(attempt, key)
                for attempt in range(1, self.max_attempts)]

    def __repr__(self):
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, max_delay={self.max_delay}, "
            f"jitter={self.jitter}, deadline={self.deadline})"
        )


class Deadline:
    """A wall-clock budget.  ``seconds=None`` means unbounded."""

    def __init__(self, seconds, clock=time.monotonic):
        self.clock = clock
        self.expires_at = None if seconds is None else clock() + seconds

    @property
    def expired(self):
        return self.expires_at is not None and self.clock() >= self.expires_at

    def remaining(self):
        """Seconds left, or ``None`` when unbounded."""
        if self.expires_at is None:
            return None
        return self.expires_at - self.clock()

    def clamp(self, delay):
        """*delay* cut down to the remaining budget (never negative)."""
        remaining = self.remaining()
        if remaining is None:
            return delay
        return max(0.0, min(delay, remaining))


#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerPolicy:
    """Tunables for a :class:`CircuitBreaker` (shared by a tracker).

    ``failure_threshold`` consecutive failures trip the breaker;
    ``reset_timeout`` seconds later one probe request is let through
    (half-open); its outcome closes or re-opens the circuit.
    """

    def __init__(self, failure_threshold=5, reset_timeout=30.0,
                 clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock


class CircuitBreaker:
    """Per-peer health: closed -> open -> half-open -> closed/open.

    Thread-safe; the fan-out worker threads of one agent share it.
    ``allow()`` is the gate: ``False`` means fail fast without touching
    the wire.  In half-open exactly one in-flight probe is allowed at a
    time; its success closes the circuit, its failure re-opens it.
    """

    def __init__(self, policy=None):
        self.policy = policy or BreakerPolicy()
        self._lock = threading.Lock()
        self.state = CLOSED
        self.consecutive_failures = 0
        self._opened_at = None
        self._probe_in_flight = False
        self.stats = {"opens": 0, "fast_failures": 0, "probes": 0}

    def allow(self):
        """Whether a request to this peer may go out now."""
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN and (
                    self.policy.clock() - self._opened_at
                    >= self.policy.reset_timeout):
                self.state = HALF_OPEN
                self._probe_in_flight = False
            if self.state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                self.stats["probes"] += 1
                return True
            self.stats["fast_failures"] += 1
            return False

    def record_success(self):
        with self._lock:
            self.state = CLOSED
            self.consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self):
        with self._lock:
            self.consecutive_failures += 1
            self._probe_in_flight = False
            should_open = (
                self.state == HALF_OPEN
                or (self.state == CLOSED
                    and self.consecutive_failures
                    >= self.policy.failure_threshold)
            )
            if should_open:
                self.state = OPEN
                self._opened_at = self.policy.clock()
                self.stats["opens"] += 1

    def snapshot(self):
        with self._lock:
            return dict(self.stats, state=self.state,
                        consecutive_failures=self.consecutive_failures)

    def __repr__(self):
        return (f"CircuitBreaker(state={self.state!r}, "
                f"consecutive_failures={self.consecutive_failures})")


class SiteHealthTracker:
    """One :class:`CircuitBreaker` per peer site, created on demand."""

    def __init__(self, policy=None):
        self.policy = policy or BreakerPolicy()
        self._breakers = {}
        self._lock = threading.Lock()

    def breaker(self, site):
        with self._lock:
            breaker = self._breakers.get(site)
            if breaker is None:
                breaker = CircuitBreaker(self.policy)
                self._breakers[site] = breaker
            return breaker

    def allow(self, site):
        return self.breaker(site).allow()

    def record_success(self, site):
        self.breaker(site).record_success()

    def record_failure(self, site):
        self.breaker(site).record_failure()

    def snapshot(self):
        """``{site: breaker snapshot}`` for stats surfaces."""
        with self._lock:
            breakers = dict(self._breakers)
        return {site: breaker.snapshot()
                for site, breaker in sorted(breakers.items())}


#: The process-wide default applied when an OAConfig names no policy.
DEFAULT_RETRY_POLICY = RetryPolicy()
