"""The organizing agent (OA): the per-site query/update/cache processor.

Each site runs one OA.  It owns part of the document, caches what
passes through it (aggressive query-driven caching, Section 3.3),
answers user queries and subqueries via the gather driver, applies or
forwards sensor updates, and takes part in ownership migrations.
"""

import threading
from collections import deque

from repro.core.errors import CoreError
from repro.core.executors import SerialExecutor, resolve_executor
from repro.core.gather import GatherDriver, SubqueryFailure
from repro.core.idable import id_path_of, idable_children
from repro.core.ownership import (
    export_local_information,
    relinquish_ownership,
)
from repro.core.evolution import add_idable_child, remove_idable_child
from repro.core.qeg import FETCH_SUBTREE, GENERALIZE_ANSWER
from repro.core.status import Status, get_status
from repro.net.continuous import ContinuousQueryManager
from repro.net.errors import (
    CircuitOpenError,
    MigrationError,
    NetError,
    RemoteError,
)
from repro.net.messages import (
    AckMessage,
    AdoptMessage,
    AnswerMessage,
    BatchAnswerMessage,
    BatchQueryMessage,
    ErrorMessage,
    MigrateReleaseMessage,
    PartialAggregateRequest,
    QueryMessage,
    ReplicaRetireMessage,
    RehydrateAnswer,
    RehydrateRequest,
    ReplicateMessage,
    UpdateMessage,
    clean_results,
)
from repro.net.retry import (
    DEFAULT_RETRY_POLICY,
    BreakerPolicy,
    Deadline,
    SiteHealthTracker,
)
from repro.obs.tracing import TRACER, attach_context, propagate


_SERIAL = SerialExecutor()


class OAConfig:
    """Tunables for an organizing agent.

    ``cache_results``
        merge gathered fragments into the site database (the paper's
        default aggressive caching) or use a per-query overlay;
    ``nesting_strategy``
        ``fetch-subtree`` (paper's implemented approach) or
        ``boolean-probe`` (the proposed alternative);
    ``fast_codegen``
        use the pre-compiled QEG/XSLT skeleton (Section 4, "Speeding up
        XSLT processing"); only affects the accounted processing cost,
        not results.
    ``executor``
        how one gather round's subqueries are dispatched: ``None`` (the
        default shared thread executor -- one WAN round-trip per
        round), ``"serial"`` for strictly sequential dispatch
        (deterministic timing; the simulator forces this and models
        parallelism in virtual time), or any object with a
        ``map(fn, items)`` method.  Answers are identical under every
        executor; only wall-clock dispatch differs.
    ``retry_policy``
        the :class:`~repro.net.retry.RetryPolicy` governing subquery
        dispatch (``None`` for the shared default).  On the success
        path the policy is invisible: no extra wire messages, byte-
        identical answers.
    ``breaker``
        the per-peer circuit breaker:
        a :class:`~repro.net.retry.BreakerPolicy`, ``None`` for the
        default, or ``False`` to disable breaking entirely.
    ``partial_answers``
        when a subquery exhausts its attempt budget, degrade: mark the
        region unreachable, answer with what *is* reachable, and carry
        a machine-readable completeness report on the outcome
        (the default).  ``False`` restores the legacy loud surface --
        the last transport error is re-raised through the gather.
    ``stale_on_error``
        serve a fully-cached region beyond its freshness bound when
        its refresh fails terminally -- an explicit relaxation of the
        paper's query-based consistency (Section 4), reported under
        ``stale_served`` in the completeness report.  Off by default.
    ``semcache``
        the :class:`~repro.core.semcache.SemanticCacheConfig` governing
        canonical cache keys, freshness bucketing, and the aggregate
        cache's admission/eviction budget.  ``None`` uses the defaults
        (semantic keying on); pass ``SemanticCacheConfig(enabled=False)``
        for the legacy exact-string behaviour.
    ``replication``
        the :class:`~repro.replication.ReplicationConfig` governing
        k-replica fragment ownership: owners push their local
        information to k ring-successor peers, subquery dispatch fails
        over to a replica when the owner is dead (freshness-checked),
        and restarts rehydrate from peers.  ``None`` (the default) or
        a disabled config keeps the wire byte-identical to a build
        without the subsystem.
    ``aggregation``
        the :class:`~repro.agg.AggregationConfig` governing hierarchical
        aggregation: aggregate queries answered from per-subtree
        summary caches, partial-aggregate subqueries (merge-state
        tuples, not subtrees) to child sites, and derived sensors.
        ``None`` (the default) or a disabled config keeps the wire
        byte-identical to a build without the subsystem.
    ``rebalance``
        the :class:`~repro.rebalance.RebalanceConfig` governing the
        adaptive load balancer (hot-spot detection, fragment splits,
        live migration).  The balancer itself is a cluster-level loop;
        the per-agent effects are the always-local load tracker and
        the migration-safety hooks, so ``None`` (the default) or a
        disabled config keeps the wire byte-identical.
    """

    def __init__(self, cache_results=True, nesting_strategy=FETCH_SUBTREE,
                 fast_codegen=True, generalization=GENERALIZE_ANSWER,
                 executor=None, retry_policy=None, breaker=None,
                 partial_answers=True, stale_on_error=False,
                 semcache=None, replication=None, aggregation=None,
                 rebalance=None):
        self.cache_results = cache_results
        self.nesting_strategy = nesting_strategy
        self.fast_codegen = fast_codegen
        self.generalization = generalization
        self.executor = executor
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.partial_answers = partial_answers
        self.stale_on_error = stale_on_error
        self.semcache = semcache
        self.replication = replication
        self.aggregation = aggregation
        self.rebalance = rebalance


class OrganizingAgent:
    """One site's manager process."""

    def __init__(self, site_id, database, network, resolver, schema=None,
                 config=None, clock=None, durability=None):
        self.site_id = site_id
        self.durability = durability
        if durability is not None and database is None:
            # Startup recovery: rebuild the partition from the site's
            # checkpoint + WAL instead of a caller-provided fragment.
            database = durability.recover(clock=clock, site_id=site_id)
        if database is None:
            raise CoreError(
                f"OrganizingAgent {site_id!r} needs a database (or a "
                "durability manager with recoverable state)")
        self.database = database
        if durability is not None:
            # From here on every mutation the database commits -- the
            # update path, the gather's cache fills, evictions,
            # ownership flips -- lands on the WAL before it is
            # acknowledged.
            durability.attach(database)
        self.network = network
        self.resolver = resolver
        self.schema = schema
        self.config = config or OAConfig()
        self.clock = clock or database.clock
        self.executor = resolve_executor(self.config.executor)
        self.retry_policy = self.config.retry_policy or DEFAULT_RETRY_POLICY
        breaker = self.config.breaker
        self.health = (
            None if breaker is False
            else SiteHealthTracker(breaker or BreakerPolicy())
        )
        self.driver = GatherDriver(
            database,
            send=self._send_subquery,
            schema=schema,
            cache_results=self.config.cache_results,
            nesting_strategy=self.config.nesting_strategy,
            generalization=self.config.generalization,
            executor=self.executor,
            send_many=self._send_subqueries,
            stale_on_error=self.config.stale_on_error,
            semcache=self.config.semcache,
        )
        self.continuous = ContinuousQueryManager(self)
        replication = self.config.replication
        #: The replication manager, or ``None`` while the subsystem is
        #: off -- every hook below is gated on that, so the disabled
        #: path stays wire-identical to a replication-free build.
        #: (Imported lazily: ``repro.replication`` imports ``repro.net``
        #: for the wire messages, so a module-level import here would
        #: make the package import order matter.)
        if replication is not None and replication.enabled:
            from repro.replication import ReplicationManager
            self.replication = ReplicationManager(self)
        else:
            self.replication = None
        aggregation = self.config.aggregation
        #: The aggregation manager, or ``None`` while the subsystem is
        #: off -- the scalar entry point and the message dispatcher
        #: gate on that, so the disabled path stays wire-identical.
        #: (Lazily imported for the same package-order reason as
        #: replication above.)
        if aggregation is not None and aggregation.enabled:
            from repro.agg import AggregationManager
            self.aggregation = AggregationManager(self)
        else:
            self.aggregation = None
        #: Per-anchor served-query counters (always on: strictly local
        #: state, no wire traffic, no clock reads -- the balancer's
        #: detection signal, and harmless without a balancer).
        from repro.rebalance.tracker import PathLoadTracker
        self.load = PathLoadTracker()
        #: Migration-in-progress bookkeeping: while a region is being
        #: handed off, updates to it are applied locally (this site
        #: still owns it) *and* recorded, then forwarded to the new
        #: owner once the hand-off commits -- no update is blocked,
        #: shed, or lost across the window.
        self._migrating = ()
        self._held_updates = []
        self._migration_lock = threading.Lock()
        #: Recent migrations touching this site (both directions), for
        #: EXPLAIN's "ownership moved" annotations.
        self.migration_log = deque(maxlen=32)
        self.stats = {
            "user_queries": 0,
            "subqueries_served": 0,
            "updates_applied": 0,
            "updates_forwarded": 0,
            "subqueries_sent": 0,
            "batches_sent": 0,
            "migrations_out": 0,
            "migrations_in": 0,
            "migrations_aborted": 0,
            "migrations_released": 0,
            "held_updates_forwarded": 0,
            "held_updates_lost": 0,
            "migration_cache_evictions": 0,
            "migration_summary_evictions": 0,
            "retries": 0,
            "subquery_failures": 0,
            "circuit_fast_fails": 0,
            "dns_refreshes": 0,
        }

    # ------------------------------------------------------------------
    # Outgoing subqueries
    # ------------------------------------------------------------------
    def _resolve_target(self, subquery, refresh=False):
        """The responsible site, or ``None`` when DNS retired the node.

        A missing record means the node was deleted (schema evolution)
        and our stub is a transient leftover: authoritative DNS says it
        no longer exists, so the subquery answers "nothing" -- exactly
        the transient inconsistency Section 4 accepts.

        With *refresh* the cached entry is dropped first and resolution
        goes back to the authoritative server -- between retry attempts
        the cache may be the problem (the owner migrated or was
        delegated away and our entry is stale).
        """
        from repro.net.errors import NameNotFound

        name = self.resolver.server.name_for(subquery.anchor_path)
        if refresh:
            self.resolver.invalidate(name)
            self.stats["dns_refreshes"] += 1
        try:
            target, _hops = self.resolver.resolve(name)
        except NameNotFound:
            return None
        return target

    def _send_subquery(self, subquery):
        """Route a QEG subquery to the responsible site and await the reply."""
        target = self._resolve_target(subquery)
        if target is None:
            return None
        self.stats["subqueries_sent"] += 1
        return self._dispatch_with_retry(target, [subquery])[0]

    def _send_subqueries(self, subqueries):
        """One gather round's fan-out: batch per destination, in parallel.

        Resolves every subquery's responsible site, groups the remote
        ones by destination (one :class:`BatchQueryMessage` -- a single
        framed request -- per site with several asks), dispatches the
        per-site groups concurrently through the configured executor,
        and returns the replies in input order for the driver's
        deterministic merge.  Each group runs through the retry layer;
        terminal failures come back as per-subquery
        :class:`~repro.core.gather.SubqueryFailure` sentinels.
        """
        replies = [None] * len(subqueries)
        groups = {}
        for index, subquery in enumerate(subqueries):
            target = self._resolve_target(subquery)
            if target is None:
                continue
            self.stats["subqueries_sent"] += 1
            if target == self.site_id:
                # Ownership race or self-anchored fetch: answer locally.
                replies[index] = self.driver.answer_any(subquery.query)
            else:
                groups.setdefault(target, []).append(index)
        if not groups:
            return replies
        self.stats["batches_sent"] += sum(
            1 for indices in groups.values() if len(indices) > 1
        )

        def ship(entry):
            target, indices = entry
            return self._dispatch_with_retry(
                target, [subqueries[i] for i in indices])

        executor = self.executor
        if getattr(self.network, "requires_serial_dispatch", False):
            # E.g. the simulator's tracing network builds one RPC tree
            # on a plain stack; concurrent dispatch would corrupt it.
            executor = _SERIAL
        grouped = sorted(groups.items())
        for (_target, indices), group_replies in zip(
                grouped, executor.map(propagate(ship), grouped)):
            for index, reply in zip(indices, group_replies):
                replies[index] = reply
        return replies

    # -- the retry / breaker / degradation loop -------------------------
    def _dispatch_with_retry(self, target, subqueries):
        """Ship one same-destination group, surviving what can be survived.

        Per attempt: the peer's circuit breaker gates the send (an open
        circuit fails fast without touching the wire), transport errors
        and structured :class:`ErrorMessage` replies count against the
        attempt budget, and between attempts the anchor's DNS entry is
        invalidated and re-resolved so retries follow migrated or
        delegated owners.  On terminal failure, returns one
        :class:`~repro.core.gather.SubqueryFailure` per subquery (or
        re-raises the last error when ``partial_answers`` is off).  On
        the success path -- one attempt, closed breaker -- this adds no
        wire messages and no delays.
        """
        policy = self.retry_policy
        deadline = Deadline(policy.deadline)
        backoff_key = (self.site_id, target, subqueries[0].query)
        causes = []
        last_error = None
        attempts = 0
        while True:
            attempts += 1
            if target == self.site_id:
                # Re-resolution brought the anchor home (adoption
                # completed mid-retry): answer locally.
                return [self.driver.answer_any(subquery.query)
                        for subquery in subqueries]
            if self.health is not None and not self.health.allow(target):
                self.stats["circuit_fast_fails"] += 1
                last_error = CircuitOpenError(
                    f"circuit for site {target!r} is open")
                causes.append(str(last_error))
            else:
                retryable = True
                try:
                    if len(subqueries) == 1:
                        replies = [self._ship_single(target, subqueries[0])]
                    else:
                        replies = self._ship_batch(target, subqueries)
                except RemoteError as exc:
                    last_error = exc
                    retryable = exc.retryable
                    causes.append(f"site {target!r}: {exc.code}: "
                                  f"{exc.detail}")
                    self.stats["subquery_failures"] += 1
                    if self.health is not None:
                        self.health.record_failure(target)
                except (OSError, NetError) as exc:
                    last_error = exc
                    causes.append(
                        f"site {target!r}: {type(exc).__name__}: {exc}")
                    self.stats["subquery_failures"] += 1
                    if self.health is not None:
                        self.health.record_failure(target)
                else:
                    if self.health is not None:
                        self.health.record_success(target)
                    return replies
                if not retryable:
                    break
            if attempts >= policy.max_attempts or deadline.expired:
                break
            delay = deadline.clamp(policy.backoff(attempts, backoff_key))
            if delay > 0:
                policy.sleep(delay)
            self.stats["retries"] += 1
            # The owner may have migrated (or our DNS entry gone stale
            # with a dead site): re-resolve through authoritative DNS
            # before the next attempt.
            new_targets = {
                self._resolve_target(subquery, refresh=True)
                for subquery in subqueries
            }
            if len(new_targets) == 1:
                new_target = new_targets.pop()
                if new_target is None:
                    # DNS retired every node in the group: the regions
                    # no longer exist, which is an ordinary "nothing".
                    return [None] * len(subqueries)
                target = new_target
            else:
                # The group no longer shares one owner (a migration
                # landed mid-retry): finish each ask independently.
                return [self._redispatch(subquery)
                        for subquery in subqueries]
        if self.replication is not None:
            # The owner is terminally unreachable (budget exhausted or
            # breaker open): try its replica set.  Fresh copies come
            # back as ReplicaServed and merge like owner answers; the
            # rest are ordinary failures (with the replicas' refusals
            # appended to the causes).
            replies = self.replication.failover(target, subqueries,
                                                attempts, causes)
            if replies is not None:
                failed = [reply for reply in replies
                          if isinstance(reply, SubqueryFailure)]
                if failed and not self.config.partial_answers:
                    raise last_error
                return replies
        if not self.config.partial_answers:
            raise last_error
        return [SubqueryFailure(subquery, attempts, causes)
                for subquery in subqueries]

    def _redispatch(self, subquery):
        """Restart one subquery on fresh DNS (post-divergence path)."""
        target = self._resolve_target(subquery)
        if target is None:
            return None
        return self._dispatch_with_retry(target, [subquery])[0]

    def _ship_single(self, target, subquery):
        with TRACER.span("send-subquery", site=self.site_id,
                         tags={"target": target}) as span:
            message = QueryMessage(subquery.query, now=self.clock(),
                                   scalar=subquery.scalar,
                                   sender=self.site_id)
            attach_context(message, span)
            reply = self.network.request(self.site_id, target, message)
            if isinstance(reply, ErrorMessage):
                raise RemoteError(reply.code, reply.detail,
                                  retryable=reply.retryable, site=target)
            if not isinstance(reply, AnswerMessage):
                raise NetError(
                    f"site {target!r} replied {type(reply).__name__} "
                    "to a subquery"
                )
            if subquery.scalar:
                return reply.scalar
            return reply.fragment

    def _ship_batch(self, target, subqueries):
        with TRACER.span("send-batch", site=self.site_id,
                         tags={"target": target,
                               "size": len(subqueries)}) as span:
            message = BatchQueryMessage(
                [(subquery.query, subquery.scalar)
                 for subquery in subqueries],
                now=self.clock(), sender=self.site_id)
            attach_context(message, span)
            reply = self.network.request(self.site_id, target, message)
            if isinstance(reply, ErrorMessage):
                raise RemoteError(reply.code, reply.detail,
                                  retryable=reply.retryable, site=target)
            if not isinstance(reply, BatchAnswerMessage):
                raise NetError(
                    f"site {target!r} replied {type(reply).__name__} to a "
                    "batched subquery"
                )
            if len(reply) != len(subqueries):
                raise NetError(
                    f"site {target!r} answered {len(reply)} of "
                    f"{len(subqueries)} batched subqueries"
                )
            out = []
            for subquery, answer in zip(subqueries, reply.answers):
                if isinstance(answer, tuple) and answer and \
                        answer[0] == "scalar":
                    out.append(answer[1])
                elif subquery.scalar:
                    out.append(None)
                else:
                    out.append(answer)
            return out

    # ------------------------------------------------------------------
    # Serving queries
    # ------------------------------------------------------------------
    def answer_user_query(self, query, now=None):
        """Answer a user query posed at this site.

        Returns ``(results, outcome)``; results are clean (no system
        attributes) detached elements.
        """
        self.stats["user_queries"] += 1
        self.load.record_query(query)
        with TRACER.span("user-query", site=self.site_id,
                         tags={"query": str(query)}):
            results, outcome = self.driver.answer_user_query(query, now=now)
        return results, outcome

    def handle_message(self, message):
        """Dispatch one incoming message; returns the reply message.

        Opens a ``handle-*`` span parented on the message's wire trace
        context (when present), so spans at the serving site link into
        the asking site's trace; the reply carries this span's context
        back for the sender's bookkeeping.
        """
        kind = type(message).__name__
        remote = getattr(message, "trace_ctx", None)
        with TRACER.span(f"handle-{kind}", site=self.site_id,
                         remote_parent=remote) as span:
            reply = self._dispatch_message(message)
            if reply is not None and reply.trace_ctx is None:
                attach_context(reply, span)
            return reply

    def _dispatch_message(self, message):
        if isinstance(message, QueryMessage):
            return self._handle_query(message)
        if isinstance(message, BatchQueryMessage):
            return self._handle_batch(message)
        if isinstance(message, UpdateMessage):
            return self._handle_update(message)
        if isinstance(message, AdoptMessage):
            return self._handle_adopt(message)
        if isinstance(message, MigrateReleaseMessage):
            return self._handle_migrate_release(message)
        if isinstance(message, ReplicaRetireMessage):
            return self._handle_replica_retire(message)
        if isinstance(message, ReplicateMessage):
            return self._handle_replicate(message)
        if isinstance(message, RehydrateRequest):
            return self._handle_rehydrate(message)
        if isinstance(message, PartialAggregateRequest):
            return self._handle_partial_aggregate(message)
        raise NetError(
            f"OA {self.site_id!r} cannot handle {type(message).__name__}"
        )

    def _handle_query(self, message):
        self.load.record_query(message.query)
        if message.user:
            self.stats["user_queries"] += 1
            results, outcome = self.driver.answer_user_query(
                message.query, now=message.now
            )
            completeness = None
            if outcome is not None and (outcome.failures
                                        or outcome.replica_served):
                # Partial or replica-served answer: ship the machine-
                # readable report so the front-end knows exactly which
                # regions are missing or came from a replica.
                completeness = outcome.completeness_report()
            return AnswerMessage(message.message_id,
                                 results=clean_results(results),
                                 completeness=completeness,
                                 sender=self.site_id)
        self.stats["subqueries_served"] += 1
        if message.scalar:
            scalar = self.answer_scalar(message.query, now=message.now)
            return AnswerMessage(message.message_id, scalar=scalar,
                                 sender=self.site_id)
        fragment = self.driver.answer_any(message.query, now=message.now)
        return AnswerMessage(message.message_id, fragment=fragment,
                             sender=self.site_id)

    def _handle_batch(self, message):
        """Answer a batched subquery: one reply per item, in order."""
        self.stats["subqueries_served"] += len(message.items)
        for query, _scalar in message.items:
            self.load.record_query(query)
        answers = []
        for query, scalar in message.items:
            if scalar:
                answers.append(("scalar",
                                self.answer_scalar(query,
                                                   now=message.now)))
            else:
                answers.append(self.driver.answer_any(query,
                                                      now=message.now))
        return BatchAnswerMessage(message.message_id, answers=answers,
                                  sender=self.site_id)

    def answer_scalar(self, query, now=None, max_age=None, precision=None):
        """Answer a scalar query, hierarchically when possible.

        The site-level scalar entry point: with aggregation enabled,
        supported aggregate shapes are answered from summary caches and
        partial-aggregate rollups; everything else (and every query
        while the subsystem is off) takes the gather driver's ordinary
        scalar path unchanged -- same arguments, same answers, same
        wire bytes.
        """
        if self.aggregation is not None:
            handled, value = self.aggregation.try_answer(
                query, now=now, max_age=max_age, precision=precision)
            if handled:
                return value
        return self.driver.answer_scalar(query, now=now, max_age=max_age,
                                         precision=precision)

    def _handle_partial_aggregate(self, message):
        """Serve a partial-aggregate subquery (rollup merge-state)."""
        if self.aggregation is None:
            return ErrorMessage(message.message_id,
                                code="aggregation-disabled",
                                detail="aggregation is not enabled here",
                                retryable=False, sender=self.site_id)
        return self.aggregation.answer_partial(message)

    # ------------------------------------------------------------------
    # Sensor updates
    # ------------------------------------------------------------------
    def _handle_update(self, message):
        element = self.database.find(message.id_path)
        if element is not None and get_status(element) is Status.OWNED:
            self.database.apply_update(message.id_path,
                                       attributes=message.attributes,
                                       values=message.values)
            self.stats["updates_applied"] += 1
            if self._migrating:
                # Mid-migration: this site still owns the node (the
                # commit has not happened), so the update was applied
                # normally above -- but the exported fragment predates
                # it, so it must also follow the data to the new owner
                # once the hand-off commits.
                self._note_held_update(message)
            self.continuous.on_update(message.id_path)
            if self.replication is not None:
                self.replication.note_update(message.id_path)
            return AckMessage(message.message_id, ok=True,
                              sender=self.site_id)
        # Not owned here (e.g. a stale-DNS straggler after a migration):
        # forward to the current owner per the fresh DNS entry.
        name = self.resolver.server.name_for(message.id_path)
        self.resolver.invalidate(name)
        target, _hops = self.resolver.resolve(name)
        if target == self.site_id:
            raise CoreError(
                f"DNS says {self.site_id!r} owns {message.id_path} but the "
                "node is not stored as owned here"
            )
        self.stats["updates_forwarded"] += 1
        return self.network.request(self.site_id, target, message)

    # ------------------------------------------------------------------
    # Ownership migration (Section 4)
    # ------------------------------------------------------------------
    def delegate(self, id_path, new_owner, dns_server):
        """Move ownership of the node at *id_path* (and the contiguous
        owned region below it) to *new_owner* -- live, with rollback.

        The paper's protocol (export, adopt, demote, DNS flip) plus
        the cover that makes it safe under traffic and faults:

        - **queries** are never blocked: this site owns the region
          until the commit, and keeps a complete demoted copy after
          it, so reads are answerable at every instant;
        - **updates** landing mid-hand-off are applied locally (still
          the owner) *and* recorded, then forwarded to the new owner
          after the commit -- nothing is shed or reordered past the
          exported fragment;
        - the **adopt exchange is retried** (adoption is idempotent:
          a reset that lost only the reply is healed by the resend);
        - on terminal failure a best-effort
          :class:`~repro.net.messages.MigrateReleaseMessage` tells the
          would-be adopter to demote anything it adopted, and this
          site **rolls back** -- it simply keeps ownership, held
          updates already applied.  If the release is lost too, the
          balancer's DNS-authority reconciliation demotes the loser;
        - the **commit point is the DNS flip** (in-process, cannot
          fail partway): after it, stale-DNS stragglers that still
          reach this site are forwarded per fresh DNS (updates) or
          answered from the demoted complete copy (queries);
        - after the commit, cached aggregates and summaries covering
          the migrated region are evicted (their invalidation feed --
          local updates -- just moved away) and this site's replicas
          of the region are retired from its ring peers.
        """
        id_path = tuple(tuple(entry) for entry in id_path)
        element = self.database.find(id_path)
        if element is None or get_status(element) is not Status.OWNED:
            raise MigrationError(
                f"site {self.site_id!r} does not own {id_path}"
            )
        region = self._owned_region(element)
        paths = [tuple(tuple(e) for e in id_path_of(node)) for node in region]

        self._begin_migration(paths)
        committed = False
        try:
            fragment = self._export_region(region)
            reply, last_error = self._send_adopt(new_owner, paths, fragment)
            if not (isinstance(reply, AckMessage) and reply.ok):
                self._abort_migration(new_owner, paths)
                detail = (getattr(reply, "detail", reply)
                          if reply is not None else last_error)
                raise MigrationError(
                    f"site {new_owner!r} refused adoption: {detail!r}"
                )
            for path in paths:
                relinquish_ownership(self.database, path)
            for path in paths:
                dns_server.remap(path, new_owner)
            committed = True
        finally:
            held = self._end_migration()
        self._forward_held_updates(new_owner, held)
        self._evict_migrated(paths)
        if self.replication is not None:
            self.replication.retire_paths(paths)
        self.stats["migrations_out"] += 1
        self.migration_log.append(
            {"direction": "out", "peer": new_owner, "paths": list(paths)})
        return paths

    def _adopt_attempts(self):
        rebalance = getattr(self.config, "rebalance", None)
        if rebalance is not None:
            return max(1, rebalance.adopt_attempts)
        return 3

    def _send_adopt(self, new_owner, paths, fragment):
        """The retried adopt exchange; returns ``(reply, last_error)``."""
        adopt = AdoptMessage(paths, fragment, sender=self.site_id)
        reply = None
        last_error = None
        for _attempt in range(self._adopt_attempts()):
            try:
                reply = self.network.request(self.site_id, new_owner, adopt)
            except (NetError, OSError) as exc:
                last_error = exc
                reply = None
                continue
            if isinstance(reply, ErrorMessage) and reply.retryable:
                last_error = reply
                reply = None
                continue
            break
        return reply, last_error

    def _begin_migration(self, paths):
        with self._migration_lock:
            self._migrating = tuple(paths)
            self._held_updates = []

    def _end_migration(self):
        with self._migration_lock:
            held, self._held_updates = self._held_updates, []
            self._migrating = ()
            return held

    def _note_held_update(self, message):
        path = message.id_path
        with self._migration_lock:
            if any(path[:len(prefix)] == prefix
                   for prefix in self._migrating):
                self._held_updates.append(
                    (path, dict(message.attributes), dict(message.values)))

    def _abort_migration(self, new_owner, paths):
        """Best-effort release after a failed adopt exchange.

        The dangerous failure is a *delivered* adopt whose reply was
        lost: the peer may now consider itself owner.  This site keeps
        ownership (rollback is "do nothing" -- held updates were
        applied locally), and the release tells the peer to demote.
        One-way and unacknowledged by design; the reconciliation pass
        covers the double-loss case.
        """
        release = MigrateReleaseMessage(list(paths), sender=self.site_id)
        try:
            if hasattr(self.network, "tell"):
                self.network.tell(self.site_id, new_owner, release)
            else:
                self.network.request(self.site_id, new_owner, release)
        except (NetError, OSError):
            pass
        self.stats["migrations_aborted"] += 1

    def _forward_held_updates(self, new_owner, held):
        """Replay updates recorded during the hand-off window."""
        for path, attributes, values in held:
            message = UpdateMessage(path, attributes=attributes,
                                    values=values, sender=self.site_id)
            delivered = False
            for _attempt in range(self._adopt_attempts()):
                try:
                    reply = self.network.request(
                        self.site_id, new_owner, message)
                except (NetError, OSError):
                    continue
                if isinstance(reply, ErrorMessage) and reply.retryable:
                    continue
                delivered = True
                break
            if delivered:
                self.stats["held_updates_forwarded"] += 1
            else:
                self.stats["held_updates_lost"] += 1

    def _evict_migrated(self, paths):
        """Drop cached state whose invalidation feed just moved away.

        The old owner's cached aggregates and summaries over the
        migrated region were kept honest by local updates; those
        updates now flow to the new owner, so the entries would serve
        stale values for ever.  Evicting them turns the next hit into
        an ordinary (correct) re-fetch.
        """
        aggregates = getattr(self.driver, "aggregates", None)
        if aggregates is not None:
            evicted = aggregates.evict_paths(paths)
            self.stats["migration_cache_evictions"] += evicted
        if self.aggregation is not None:
            dropped = self.aggregation.summaries.evict_regions(paths)
            self.stats["migration_summary_evictions"] += dropped

    def _handle_migrate_release(self, message):
        """Demote paths adopted in a migration the old owner aborted."""
        released = 0
        for path in message.id_paths:
            element = self.database.find(path)
            if element is not None and get_status(element) is Status.OWNED:
                relinquish_ownership(self.database, path)
                released += 1
        if released:
            self.stats["migrations_released"] += 1
            if self.replication is not None:
                self.replication.retire_paths(message.id_paths)
        return AckMessage(message.message_id, ok=True, detail=str(released),
                          sender=self.site_id)

    def _handle_replica_retire(self, message):
        """Drop replica stamps for a region *message.owner* migrated."""
        if self.replication is None:
            return AckMessage(message.message_id, ok=False,
                              detail="replication disabled",
                              sender=self.site_id)
        dropped = self.replication.retire(message.owner, message.id_paths)
        return AckMessage(message.message_id, ok=True, detail=str(dropped),
                          sender=self.site_id)

    def _owned_region(self, element):
        """The contiguous owned subtree rooted at *element*."""
        region = []
        stack = [element]
        while stack:
            node = stack.pop()
            if get_status(node) is Status.OWNED:
                region.append(node)
                stack.extend(idable_children(node))
        return region

    def _export_region(self, region):
        from repro.core.answer import AnswerBuilder

        builder = AnswerBuilder(self.database)
        for node in region:
            builder.include_local_information(node)
        return builder.build()

    def _handle_adopt(self, message):
        try:
            self.database.store_fragment(message.fragment)
            for path in message.id_paths:
                self.database.mark_owned(path)
        except CoreError as exc:
            return AckMessage(message.message_id, ok=False, detail=str(exc),
                              sender=self.site_id)
        self.stats["migrations_in"] += 1
        self.migration_log.append(
            {"direction": "in", "peer": message.sender,
             "paths": list(message.id_paths)})
        if self.replication is not None:
            # The adopted region is now this site's to replicate.
            self.replication.note_owned(message.id_paths)
        return AckMessage(message.message_id, ok=True, sender=self.site_id)

    # ------------------------------------------------------------------
    # Replication (replica side)
    # ------------------------------------------------------------------
    def _handle_replicate(self, message):
        """Accept an owner's replication batch into the replica store.

        Always returns a real (correlatable) reply: under pipelined
        runtimes an empty frame could not be routed to its waiter.
        The sender fire-and-forgets, so a refusal costs it nothing.
        """
        if self.replication is None:
            return AckMessage(message.message_id, ok=False,
                              detail="replication disabled",
                              sender=self.site_id)
        accepted = self.replication.accept(message)
        return AckMessage(message.message_id, ok=True,
                          detail=str(accepted), sender=self.site_id)

    def _handle_rehydrate(self, message):
        """Serve this site's replica of *owner*'s data (or an empty
        answer when none is held -- the asker tries the next peer)."""
        fragment, stamps = (None, {})
        if self.replication is not None:
            fragment, stamps = self.replication.export_for(
                message.owner, message.id_paths)
        return RehydrateAnswer(message.message_id, message.owner,
                               fragment=fragment, stamps=stamps,
                               sender=self.site_id)

    # ------------------------------------------------------------------
    # Schema evolution (Section 4)
    # ------------------------------------------------------------------
    def add_node(self, parent_path, tag, identifier, attributes=None,
                 values=None, dns_server=None):
        """Add an IDable node under an owned parent; register its DNS
        entry (the node starts owned by this site)."""
        element = add_idable_child(self.database, parent_path, tag,
                                   identifier, attributes=attributes,
                                   values=values)
        if dns_server is not None:
            path = tuple(tuple(e) for e in parent_path) +                 ((tag, identifier),)
            dns_server.register_id_path(path, self.site_id)
        if self.schema is not None:
            self.schema.register_child(parent_path[-1][0], tag)
        return element

    def remove_node(self, path, dns_server=None):
        """Remove an IDable node whose parent this site owns; retire
        the DNS entries of everything below it."""
        removed = remove_idable_child(self.database, path)
        if dns_server is not None:
            for removed_path in removed:
                dns_server.remove(dns_server.name_for(removed_path))
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def engine_counters(self):
        """Hot-path engine counters for this site.

        Index hit/miss/rebuild numbers are genuinely per-site (they
        come from this site database's id-path index).  The
        serialization reuse numbers are a snapshot of the
        *process-wide* memo counters -- every OA in this process shares
        the serializer -- so they are tagged ``"scope": "process"`` and
        must not be summed across sites (aggregate them once at cluster
        level, as :func:`repro.sim.metrics.collect_engine_counters`
        does).  They are best-effort under concurrency.
        """
        from repro.xmlkit.serializer import serialization_stats

        return {
            "index_hits": self.database.stats["index_hits"],
            "index_misses": self.database.stats["index_misses"],
            "index_rebuilds": self.database.stats["index_rebuilds"],
            "serialization": dict(serialization_stats(), scope="process"),
        }

    def shutdown(self, final_checkpoint=True):
        """Graceful local teardown: drain the WAL, snapshot, detach.

        Safe without durability (a no-op).  Runtimes call this after
        their drain phase -- no requests may be in flight.
        """
        if self.durability is not None:
            self.durability.close(final_checkpoint=final_checkpoint)

    def health_snapshot(self):
        """Per-peer circuit-breaker state, ``{}`` when breaking is off."""
        if self.health is None:
            return {}
        return self.health.snapshot()

    def explain(self, query, analyze=False, now=None):
        """EXPLAIN *query* from this site's current cache state.

        Returns an :class:`~repro.obs.explain.ExplainReport`: the
        per-node QEG decisions and the subquery plan the gather driver
        would dispatch in its first round.  With *analyze* the gather
        actually runs and the dispatched subqueries are appended.
        """
        from repro.obs.explain import build_explain

        return build_explain(self, query, analyze=analyze, now=now)

    def metrics(self):
        """This site's unified metrics snapshot (one nested dict)."""
        from repro.obs.registry import site_metrics

        return site_metrics(self)

    def __repr__(self):
        return (
            f"OrganizingAgent({self.site_id!r}, "
            f"owns={len(self.database.owned_nodes())} nodes)"
        )


def export_single_node(database, id_path):
    """Convenience wrapper kept for symmetry with :mod:`repro.core.ownership`."""
    return export_local_information(database, id_path)
