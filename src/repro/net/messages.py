"""Wire messages exchanged between agents.

Messages encode to self-describing XML envelopes (parsed by our own
:mod:`repro.xmlkit`), so the same message types drive the synchronous
loopback network, the threaded live runtime and the byte accounting in
the simulator's communication cost model.
"""

import itertools

from repro.core.status import strip_internal_attributes
from repro.net.errors import MessageError
from repro.obs.tracing import TraceContext
from repro.xmlkit.nodes import Element, Text
from repro.xmlkit.parser import parse_fragment
from repro.xmlkit.serializer import serialize

_SEQUENCE = itertools.count(1)


def _next_id():
    return next(_SEQUENCE)


def _encode_id_path(id_path):
    holder = Element("path")
    for tag, identifier in id_path:
        entry = Element("entry", attrib={"tag": tag})
        if identifier is not None:
            entry.set("id", identifier)
        holder.append(entry)
    return holder


def _decode_id_path(holder):
    return tuple(
        (entry.get("tag"), entry.get("id"))
        for entry in holder.element_children("entry")
    )


class Message:
    """Base class: kind dispatch plus XML envelope encoding.

    Messages are **frozen after construction** by convention: nothing
    enforces it, but :meth:`encode` memoizes the first serialization,
    so construction must stay the only mutation point.  Any future
    code path that edits a message after ``encode``/``encoded_size``
    has run (e.g. stamping ``sender`` on a relay or retry) must call
    :meth:`invalidate_encoding` afterwards or it will silently send
    stale bytes.
    """

    kind = "message"

    def __init__(self, sender=None, message_id=None):
        self.sender = sender
        self.message_id = message_id if message_id is not None else _next_id()
        #: Optional distributed-tracing context
        #: (:class:`~repro.obs.tracing.TraceContext`).  ``None`` -- the
        #: default, and the only value while tracing is disabled --
        #: adds nothing to the envelope, so untraced wire traffic is
        #: byte-identical to pre-tracing builds.  Set it (via
        #: :func:`repro.obs.tracing.attach_context`) before the first
        #: ``encode()``, like every other field.
        self.trace_ctx = None
        self._encoded = None

    # -- encoding -------------------------------------------------------
    def to_element(self):
        envelope = Element("message", attrib={
            "kind": self.kind,
            "id": str(self.message_id),
        })
        if self.sender is not None:
            envelope.set("sender", str(self.sender))
        if self.trace_ctx is not None:
            envelope.set("trace", self.trace_ctx.encode())
        self._fill(envelope)
        return envelope

    def _fill(self, envelope):
        raise NotImplementedError

    def encode(self):
        """The message as an XML string.

        Messages are write-once, so the envelope is built and
        serialized only on the first call; ``encoded_size`` plus the
        actual send then share one serialization.  Fragment payloads
        are copied into the envelope with their serialization memos
        intact, so clean subtrees contribute their cached bytes.
        """
        if self._encoded is None:
            self._encoded = serialize(self.to_element())
        return self._encoded

    def invalidate_encoding(self):
        """Drop the memoized serialization after a field mutation.

        Must accompany any post-construction edit of message fields;
        see the class docstring.
        """
        self._encoded = None

    def encoded_size(self):
        """Approximate wire size in bytes."""
        return len(self.encode())

    @staticmethod
    def decode(text):
        """Parse an encoded message back into its typed object."""
        envelope = parse_fragment(text)
        kind = envelope.get("kind")
        cls = _KINDS.get(kind)
        if cls is None:
            raise MessageError(f"unknown message kind {kind!r}")
        message = cls._parse(envelope)
        trace = envelope.get("trace")
        if trace is not None:
            message.trace_ctx = TraceContext.decode(trace)
        return message

    @classmethod
    def _parse(cls, envelope):
        raise NotImplementedError

    def _repr_size(self):
        """``, size=N`` once the message has been encoded (never forces
        an encode: repr must stay side-effect free)."""
        if self._encoded is None:
            return ""
        return f", size={len(self._encoded)}"

    def __repr__(self):
        return (f"{type(self).__name__}(id={self.message_id}, "
                f"kind={self.kind!r}{self._repr_size()})")


class QueryMessage(Message):
    """A user query or an inter-site subquery.

    ``now`` pins the query's clock reading so consistency predicates
    are evaluated against the asking site's notion of time; ``scalar``
    marks boolean/aggregate probes; ``user`` distinguishes user queries
    (answered with clean result lists) from subqueries (answered with
    generalized wire fragments).
    """

    kind = "query"

    def __init__(self, query, now=None, scalar=False, user=False,
                 sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.query = query
        self.now = now
        self.scalar = scalar
        self.user = user

    def _fill(self, envelope):
        if self.now is not None:
            envelope.set("now", repr(float(self.now)))
        envelope.set("scalar", "1" if self.scalar else "0")
        envelope.set("user", "1" if self.user else "0")
        envelope.append(Element("q", text=self.query))

    @classmethod
    def _parse(cls, envelope):
        q = envelope.child("q")
        now = envelope.get("now")
        return cls(
            query=q.text or "",
            now=float(now) if now is not None else None,
            scalar=envelope.get("scalar") == "1",
            user=envelope.get("user") == "1",
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        flags = "".join((
            " scalar" if self.scalar else "",
            " user" if self.user else "",
        ))
        return (f"QueryMessage(id={self.message_id}, "
                f"query={self.query!r},{flags} "
                f"sender={self.sender!r}{self._repr_size()})")


class AnswerMessage(Message):
    """The reply to a :class:`QueryMessage`.

    Carries a wire fragment (subqueries), a scalar (probes/aggregates)
    or a list of clean result elements (user queries).  *completeness*
    is an optional machine-readable report (see
    :meth:`~repro.core.gather.GatherOutcome.completeness_report`)
    attached only when the answer is partial or served stale data --
    complete answers encode byte-identically to a report-free reply.
    """

    kind = "answer"

    def __init__(self, in_reply_to, fragment=None, scalar=None, results=None,
                 completeness=None, sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.in_reply_to = in_reply_to
        self.fragment = fragment
        self.scalar = scalar
        self.results = results
        self.completeness = completeness

    def _fill(self, envelope):
        envelope.set("replyTo", str(self.in_reply_to))
        if self.completeness is not None:
            envelope.append(_encode_completeness(self.completeness))
        if self.scalar is not None:
            holder = Element("scalar",
                             attrib={"type": type(self.scalar).__name__})
            holder.append(Text(_scalar_to_text(self.scalar)))
            envelope.append(holder)
        if self.fragment is not None:
            holder = Element("fragment")
            holder.append(self.fragment.copy())
            envelope.append(holder)
        if self.results is not None:
            holder = Element("results")
            for result in self.results:
                if isinstance(result, Element):
                    holder.append(result.copy())
                else:
                    holder.append(Text(result.value))
            envelope.append(holder)

    @classmethod
    def _parse(cls, envelope):
        fragment = None
        scalar = None
        results = None
        holder = envelope.child("fragment")
        if holder is not None:
            children = list(holder.element_children())
            fragment = children[0].copy() if children else None
        scalar_holder = envelope.child("scalar")
        if scalar_holder is not None:
            scalar = _scalar_from_text(scalar_holder.get("type"),
                                       scalar_holder.text or "")
        results_holder = envelope.child("results")
        if results_holder is not None:
            results = [child.copy() for child in
                       results_holder.element_children()]
        completeness_holder = envelope.child("completeness")
        completeness = (
            _decode_completeness(completeness_holder)
            if completeness_holder is not None else None
        )
        return cls(
            in_reply_to=int(envelope.get("replyTo")),
            fragment=fragment,
            scalar=scalar,
            results=results,
            completeness=completeness,
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        if self.results is not None:
            payload = f"results={len(self.results)}"
        elif self.fragment is not None:
            payload = f"fragment=<{self.fragment.tag}>"
        elif self.scalar is not None:
            payload = f"scalar={self.scalar!r}"
        else:
            payload = "empty"
        partial = ""
        if self.completeness is not None and \
                not self.completeness.get("complete", True):
            partial = ", PARTIAL"
        return (f"AnswerMessage(id={self.message_id}, "
                f"replyTo={self.in_reply_to}, {payload}{partial}, "
                f"sender={self.sender!r}{self._repr_size()})")


def _encode_completeness(report):
    holder = Element("completeness", attrib={
        "complete": "1" if report.get("complete") else "0",
    })
    for section in ("unreachable", "stale_served", "replica_too_stale"):
        for entry in report.get(section, ()):
            item = Element("miss", attrib={
                "section": section,
                "attempts": str(entry.get("attempts", 0)),
                "scalar": "1" if entry.get("scalar") else "0",
            })
            item.append(_encode_id_path(entry.get("id_path", ())))
            item.append(Element("q", text=entry.get("query", "")))
            for cause in entry.get("causes", ()):
                item.append(Element("cause", text=cause))
            holder.append(item)
    # Regions a replica answered for a dead owner: present only when
    # failover actually served data, so replication-free (and
    # replication-disabled) reports encode byte-identically to before
    # the subsystem existed.
    for entry in report.get("served_by_replica", ()):
        item = Element("replica", attrib={
            "site": str(entry.get("replica", "")),
            "owner": str(entry.get("owner", "")),
            "age": repr(float(entry.get("age", 0.0))),
        })
        item.append(_encode_id_path(entry.get("id_path", ())))
        item.append(Element("q", text=entry.get("query", "")))
        holder.append(item)
    return holder


def _decode_completeness(holder):
    report = {
        "complete": holder.get("complete") == "1",
        "unreachable": [],
        "stale_served": [],
        "served_by_replica": [],
        "replica_too_stale": [],
    }
    for item in holder.element_children("miss"):
        section = item.get("section")
        if section not in report:
            continue
        query = item.child("q")
        report[section].append({
            "id_path": [list(entry) for entry
                        in _decode_id_path(item.child("path"))],
            "query": (query.text or "") if query is not None else "",
            "scalar": item.get("scalar") == "1",
            "attempts": int(item.get("attempts") or 0),
            "causes": [cause.text or ""
                       for cause in item.element_children("cause")],
        })
    for item in holder.element_children("replica"):
        query = item.child("q")
        report["served_by_replica"].append({
            "id_path": [list(entry) for entry
                        in _decode_id_path(item.child("path"))],
            "query": (query.text or "") if query is not None else "",
            "replica": item.get("site") or "",
            "owner": item.get("owner") or "",
            "age": float(item.get("age") or 0.0),
        })
    return report


def _scalar_to_text(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _scalar_from_text(type_name, text):
    if type_name == "bool":
        return text == "true"
    if type_name == "float":
        return float(text)
    if type_name == "int":
        return int(text)
    if type_name == "NoneType":
        return None
    return text


class BatchQueryMessage(Message):
    """Several subqueries for one destination site in one envelope.

    One gather round often asks the same remote site for several
    independent nodes; batching ships them in a single framed request
    (one round-trip, one dispatch at the remote) instead of one wire
    exchange per ask.  ``items`` is a list of ``(query, scalar)``
    pairs, answered positionally by a :class:`BatchAnswerMessage`.
    """

    kind = "batch-query"

    def __init__(self, items, now=None, sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.items = [(query, bool(scalar)) for query, scalar in items]
        self.now = now

    def _fill(self, envelope):
        if self.now is not None:
            envelope.set("now", repr(float(self.now)))
        for query, scalar in self.items:
            envelope.append(Element("sub",
                                    attrib={"scalar": "1" if scalar else "0"},
                                    text=query))

    @classmethod
    def _parse(cls, envelope):
        now = envelope.get("now")
        return cls(
            items=[(sub.text or "", sub.get("scalar") == "1")
                   for sub in envelope.element_children("sub")],
            now=float(now) if now is not None else None,
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __len__(self):
        return len(self.items)

    def __repr__(self):
        preview = self.items[0][0] if self.items else ""
        return (f"BatchQueryMessage(id={self.message_id}, "
                f"items={len(self.items)}, first={preview!r}, "
                f"sender={self.sender!r}{self._repr_size()})")


class BatchAnswerMessage(Message):
    """Positional replies to a :class:`BatchQueryMessage`.

    ``answers`` holds one entry per batched item, in request order:
    a wire fragment :class:`~repro.xmlkit.nodes.Element`, a scalar
    wrapped as ``("scalar", value)``, or ``None`` when the remote had
    nothing.
    """

    kind = "batch-answer"

    def __init__(self, in_reply_to, answers, sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.in_reply_to = in_reply_to
        self.answers = list(answers)

    def _fill(self, envelope):
        envelope.set("replyTo", str(self.in_reply_to))
        for answer in self.answers:
            item = Element("item")
            if isinstance(answer, tuple) and answer and \
                    answer[0] == "scalar":
                value = answer[1]
                holder = Element("scalar",
                                 attrib={"type": type(value).__name__})
                holder.append(Text(_scalar_to_text(value)))
                item.append(holder)
            elif answer is not None:
                holder = Element("fragment")
                holder.append(answer.copy())
                item.append(holder)
            envelope.append(item)

    @classmethod
    def _parse(cls, envelope):
        answers = []
        for item in envelope.element_children("item"):
            scalar_holder = item.child("scalar")
            fragment_holder = item.child("fragment")
            if scalar_holder is not None:
                answers.append(("scalar",
                                _scalar_from_text(scalar_holder.get("type"),
                                                  scalar_holder.text or "")))
            elif fragment_holder is not None:
                children = list(fragment_holder.element_children())
                answers.append(children[0].copy() if children else None)
            else:
                answers.append(None)
        return cls(
            in_reply_to=int(envelope.get("replyTo")),
            answers=answers,
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __len__(self):
        return len(self.answers)

    def __repr__(self):
        return (f"BatchAnswerMessage(id={self.message_id}, "
                f"replyTo={self.in_reply_to}, "
                f"answers={len(self.answers)}, "
                f"sender={self.sender!r}{self._repr_size()})")


class ErrorMessage(Message):
    """A structured failure reply.

    Sent instead of an answer when a peer could not process a request
    -- a handler exception, an undecodable frame, or an injected fault
    standing in for a broken site.  ``retryable`` tells the caller
    whether the same request may legitimately succeed on a retry
    (transient fault) or will deterministically fail again (handler
    bug, malformed request) and should not burn the attempt budget.
    """

    kind = "error"

    def __init__(self, in_reply_to, code="error", detail="", retryable=True,
                 sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.in_reply_to = int(in_reply_to)
        self.code = code
        self.detail = detail
        self.retryable = bool(retryable)

    def _fill(self, envelope):
        envelope.set("replyTo", str(self.in_reply_to))
        envelope.set("code", self.code)
        envelope.set("retryable", "1" if self.retryable else "0")
        if self.detail:
            envelope.append(Element("detail", text=self.detail))

    @classmethod
    def _parse(cls, envelope):
        detail = envelope.child("detail")
        return cls(
            in_reply_to=int(envelope.get("replyTo")),
            code=envelope.get("code") or "error",
            detail=(detail.text or "") if detail is not None else "",
            retryable=envelope.get("retryable") == "1",
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        retry = "retryable" if self.retryable else "terminal"
        return (f"ErrorMessage(id={self.message_id}, "
                f"replyTo={self.in_reply_to}, code={self.code!r}, "
                f"{retry}, sender={self.sender!r}{self._repr_size()})")


class UpdateMessage(Message):
    """A sensor update from an SA (or a forward from a non-owner OA)."""

    kind = "update"

    def __init__(self, id_path, attributes=None, values=None, sender=None,
                 message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.id_path = tuple(tuple(entry) for entry in id_path)
        self.attributes = dict(attributes or {})
        self.values = dict(values or {})

    def _fill(self, envelope):
        envelope.append(_encode_id_path(self.id_path))
        attrs = Element("attrs")
        for name, value in self.attributes.items():
            attrs.append(Element("a", attrib={"name": name, "value": value}))
        envelope.append(attrs)
        values = Element("values")
        for tag, text in self.values.items():
            values.append(Element("v", attrib={"name": tag}, text=str(text)))
        envelope.append(values)

    @classmethod
    def _parse(cls, envelope):
        attributes = {
            a.get("name"): a.get("value")
            for a in envelope.child("attrs").element_children("a")
        }
        values = {
            v.get("name"): (v.text or "")
            for v in envelope.child("values").element_children("v")
        }
        return cls(
            id_path=_decode_id_path(envelope.child("path")),
            attributes=attributes,
            values=values,
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        target = "/".join(
            f"{tag}={identifier}" for tag, identifier in self.id_path)
        return (f"UpdateMessage(id={self.message_id}, target={target!r}, "
                f"values={len(self.values)}, "
                f"sender={self.sender!r}{self._repr_size()})")


class AckMessage(Message):
    """A generic acknowledgement."""

    kind = "ack"

    def __init__(self, in_reply_to, ok=True, detail="", sender=None,
                 message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.in_reply_to = in_reply_to
        self.ok = ok
        self.detail = detail

    def _fill(self, envelope):
        envelope.set("replyTo", str(self.in_reply_to))
        envelope.set("ok", "1" if self.ok else "0")
        if self.detail:
            envelope.append(Element("detail", text=self.detail))

    @classmethod
    def _parse(cls, envelope):
        detail = envelope.child("detail")
        return cls(
            in_reply_to=int(envelope.get("replyTo")),
            ok=envelope.get("ok") == "1",
            detail=(detail.text or "") if detail is not None else "",
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        status = "ok" if self.ok else f"refused {self.detail!r}"
        return (f"AckMessage(id={self.message_id}, "
                f"replyTo={self.in_reply_to}, {status}, "
                f"sender={self.sender!r}{self._repr_size()})")


class AdoptMessage(Message):
    """Ownership migration: "take ownership of these nodes" (steps 1-3).

    Carries the wire fragment exported by the old owner and the ID
    paths of every node changing hands.
    """

    kind = "adopt"

    def __init__(self, id_paths, fragment, sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.id_paths = [tuple(tuple(e) for e in path) for path in id_paths]
        self.fragment = fragment

    def _fill(self, envelope):
        paths = Element("paths")
        for path in self.id_paths:
            paths.append(_encode_id_path(path))
        envelope.append(paths)
        holder = Element("fragment")
        holder.append(self.fragment.copy())
        envelope.append(holder)

    @classmethod
    def _parse(cls, envelope):
        paths = [
            _decode_id_path(p)
            for p in envelope.child("paths").element_children("path")
        ]
        children = list(envelope.child("fragment").element_children())
        return cls(
            id_paths=paths,
            fragment=children[0].copy() if children else None,
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        return (f"AdoptMessage(id={self.message_id}, "
                f"nodes={len(self.id_paths)}, "
                f"sender={self.sender!r}{self._repr_size()})")


class MigrateReleaseMessage(Message):
    """Migration rollback: "release the nodes I asked you to adopt".

    Sent by a migrating owner whose adopt exchange failed after the
    request may already have been delivered (reply lost, connection
    reset).  Adoption is idempotent, so the only dangerous outcome is
    *dual ownership*; this message tells the would-be adopter to demote
    the listed paths back to cached copies.  It is best-effort -- if it
    is lost too, the balancer's DNS-authority reconciliation pass
    demotes the loser on a later tick.
    """

    kind = "migrate-release"

    def __init__(self, id_paths, sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.id_paths = [tuple(tuple(e) for e in path) for path in id_paths]

    def _fill(self, envelope):
        paths = Element("paths")
        for path in self.id_paths:
            paths.append(_encode_id_path(path))
        envelope.append(paths)

    @classmethod
    def _parse(cls, envelope):
        paths = [
            _decode_id_path(p)
            for p in envelope.child("paths").element_children("path")
        ]
        return cls(
            id_paths=paths,
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        return (f"MigrateReleaseMessage(id={self.message_id}, "
                f"nodes={len(self.id_paths)}, "
                f"sender={self.sender!r}{self._repr_size()})")


class ReplicaRetireMessage(Message):
    """Ring re-placement: "drop the replicas you hold for me here".

    After an owner migrates a subtree away, the replicas it pushed to
    its ring successors are stale forever -- the new owner replicates
    to *its own* successors instead.  Retiring them keeps a later
    failover from serving the frozen copy.  One-way and best-effort,
    like :class:`ReplicateMessage`.
    """

    kind = "replica-retire"

    def __init__(self, owner, id_paths, sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.owner = owner
        self.id_paths = [tuple(tuple(e) for e in path) for path in id_paths]

    def _fill(self, envelope):
        envelope.set("owner", self.owner)
        paths = Element("paths")
        for path in self.id_paths:
            paths.append(_encode_id_path(path))
        envelope.append(paths)

    @classmethod
    def _parse(cls, envelope):
        paths = [
            _decode_id_path(p)
            for p in envelope.child("paths").element_children("path")
        ]
        return cls(
            owner=envelope.get("owner"),
            id_paths=paths,
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        return (f"ReplicaRetireMessage(id={self.message_id}, "
                f"owner={self.owner!r}, nodes={len(self.id_paths)}, "
                f"sender={self.sender!r}{self._repr_size()})")


def _encode_stamps(stamps):
    """``{id_path: (timestamp, version)}`` as a ``<stamps>`` holder."""
    holder = Element("stamps")
    for path, (timestamp, version) in sorted(
            stamps.items(), key=lambda entry: repr(entry[0])):
        item = Element("stamp", attrib={
            "ts": repr(float(timestamp)),
            "v": str(int(version)),
        })
        item.append(_encode_id_path(path))
        holder.append(item)
    return holder


def _decode_stamps(holder):
    stamps = {}
    if holder is None:
        return stamps
    for item in holder.element_children("stamp"):
        path = _decode_id_path(item.child("path"))
        stamps[path] = (float(item.get("ts") or 0.0),
                        int(item.get("v") or 0))
    return stamps


class ReplicateMessage(Message):
    """An owner's fire-and-forget replication batch to one replica peer.

    Carries the wire fragment (C1/C2, root-rooted -- the same shape as
    any generalized answer) for the replicated nodes plus per-path
    *stamps*: ``(data timestamp, database subtree version)``.  The
    version lets a replica drop reordered stale batches; the timestamp
    is what failover later judges against a query's freshness bound.
    Loss is tolerated by design -- the next update re-replicates.
    """

    kind = "replicate"

    def __init__(self, owner, fragment, stamps, sender=None,
                 message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.owner = owner
        self.fragment = fragment
        self.stamps = {
            tuple(tuple(entry) for entry in path):
                (float(timestamp), int(version))
            for path, (timestamp, version) in dict(stamps).items()
        }

    def _fill(self, envelope):
        envelope.set("owner", str(self.owner))
        envelope.append(_encode_stamps(self.stamps))
        holder = Element("fragment")
        holder.append(self.fragment.copy())
        envelope.append(holder)

    @classmethod
    def _parse(cls, envelope):
        children = list(envelope.child("fragment").element_children())
        return cls(
            owner=envelope.get("owner"),
            fragment=children[0].copy() if children else None,
            stamps=_decode_stamps(envelope.child("stamps")),
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        return (f"ReplicateMessage(id={self.message_id}, "
                f"owner={self.owner!r}, stamps={len(self.stamps)}, "
                f"sender={self.sender!r}{self._repr_size()})")


class RehydrateRequest(Message):
    """"Send me your replica of *owner*'s data" (failover + recovery).

    With *id_paths* only those regions are wanted (an asker failing a
    subquery group over to a replica); without, the whole per-owner
    copy ships (a restarted owner rebuilding its fragment from peers).
    """

    kind = "rehydrate"

    def __init__(self, owner, id_paths=(), sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.owner = owner
        self.id_paths = [tuple(tuple(entry) for entry in path)
                         for path in id_paths]

    def _fill(self, envelope):
        envelope.set("owner", str(self.owner))
        paths = Element("paths")
        for path in self.id_paths:
            paths.append(_encode_id_path(path))
        envelope.append(paths)

    @classmethod
    def _parse(cls, envelope):
        paths_holder = envelope.child("paths")
        paths = [
            _decode_id_path(p)
            for p in paths_holder.element_children("path")
        ] if paths_holder is not None else []
        return cls(
            owner=envelope.get("owner"),
            id_paths=paths,
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        scope = len(self.id_paths) or "all"
        return (f"RehydrateRequest(id={self.message_id}, "
                f"owner={self.owner!r}, regions={scope}, "
                f"sender={self.sender!r}{self._repr_size()})")


class RehydrateAnswer(Message):
    """The reply to a :class:`RehydrateRequest`.

    ``fragment`` is ``None`` when the replier holds no replica of the
    owner (or none of the requested regions); ``stamps`` cover every
    path in the fragment so the asker can judge freshness itself.
    Carries ``replyTo`` like every reply kind, so pipelined runtimes
    correlate it without decoding.
    """

    kind = "rehydrate-answer"

    def __init__(self, in_reply_to, owner, fragment=None, stamps=None,
                 sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.in_reply_to = int(in_reply_to)
        self.owner = owner
        self.fragment = fragment
        self.stamps = {
            tuple(tuple(entry) for entry in path):
                (float(timestamp), int(version))
            for path, (timestamp, version) in dict(stamps or {}).items()
        }

    def _fill(self, envelope):
        envelope.set("replyTo", str(self.in_reply_to))
        envelope.set("owner", str(self.owner))
        if self.stamps:
            envelope.append(_encode_stamps(self.stamps))
        if self.fragment is not None:
            holder = Element("fragment")
            holder.append(self.fragment.copy())
            envelope.append(holder)

    @classmethod
    def _parse(cls, envelope):
        fragment = None
        holder = envelope.child("fragment")
        if holder is not None:
            children = list(holder.element_children())
            fragment = children[0].copy() if children else None
        return cls(
            in_reply_to=int(envelope.get("replyTo")),
            owner=envelope.get("owner"),
            fragment=fragment,
            stamps=_decode_stamps(envelope.child("stamps")),
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        payload = ("empty" if self.fragment is None
                   else f"fragment=<{self.fragment.tag}>")
        return (f"RehydrateAnswer(id={self.message_id}, "
                f"replyTo={self.in_reply_to}, owner={self.owner!r}, "
                f"{payload}, stamps={len(self.stamps)}, "
                f"sender={self.sender!r}{self._repr_size()})")


class PartialAggregateRequest(Message):
    """"Roll up *query* under *region* and send me the merge-state."

    The hierarchical-aggregation ask: instead of gathering a frontier's
    whole subtree, its owner is asked for the (count, sum, min, max)
    partial of the matches under *region* -- tuples on the wire, never
    data.  ``query`` is the inner location path (freshness tolerances
    already bucket-loosened by the asker); ``bound`` is that loosened
    freshness bound in seconds (absent for an unbounded ask, which the
    owner must recompute); ``now`` pins the evaluation clock so
    consistency predicates filter identically at every level.

    Only sent while ``OAConfig.aggregation`` is enabled -- a disabled
    build never emits or answers one (wire parity).
    """

    kind = "partial-agg"

    def __init__(self, region, query, bound=None, now=None, sender=None,
                 message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.region = tuple(tuple(entry) for entry in region)
        self.query = query
        self.bound = float(bound) if bound is not None else None
        self.now = float(now) if now is not None else None

    def _fill(self, envelope):
        envelope.set("q", self.query)
        if self.bound is not None:
            envelope.set("bound", repr(self.bound))
        if self.now is not None:
            envelope.set("now", repr(self.now))
        envelope.append(_encode_id_path(self.region))

    @classmethod
    def _parse(cls, envelope):
        bound = envelope.get("bound")
        now = envelope.get("now")
        return cls(
            region=_decode_id_path(envelope.child("path")),
            query=envelope.get("q"),
            bound=float(bound) if bound is not None else None,
            now=float(now) if now is not None else None,
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        bound = "none" if self.bound is None else f"{self.bound:g}s"
        return (f"PartialAggregateRequest(id={self.message_id}, "
                f"region={self.region}, bound={bound}, "
                f"sender={self.sender!r}{self._repr_size()})")


class PartialAggregateAnswer(Message):
    """The reply to a :class:`PartialAggregateRequest`.

    ``state`` is a merge-state -- ``{region id_path: (Partial,
    data_ts)}`` -- normally collapsed to a single entry keyed by the
    asked region.  Each entry ships the partial's exact encoding (see
    :meth:`repro.agg.partial.Partial.to_attrs`: integer count, the
    rational sum as ``num``/``den``, NaN/infinity flags, finite
    extrema) plus its data timestamp, so any merge order at the asker
    reproduces the same aggregate.  Carries ``replyTo`` like every
    reply kind, so pipelined runtimes correlate it without decoding.
    """

    kind = "partial-agg-answer"

    def __init__(self, in_reply_to, state, sender=None, message_id=None):
        super().__init__(sender=sender, message_id=message_id)
        self.in_reply_to = int(in_reply_to)
        self.state = {
            tuple(tuple(entry) for entry in region): (partial, float(ts))
            for region, (partial, ts) in dict(state or {}).items()
        }

    def _fill(self, envelope):
        envelope.set("replyTo", str(self.in_reply_to))
        holder = Element("state")
        for region in sorted(self.state, key=repr):
            partial, data_ts = self.state[region]
            part = Element("part", attrib=partial.to_attrs())
            part.set("ts", repr(float(data_ts)))
            part.append(_encode_id_path(region))
            holder.append(part)
        envelope.append(holder)

    @classmethod
    def _parse(cls, envelope):
        # Lazy: repro.agg imports repro.net for these very messages, so
        # a module-level import here would make package order matter.
        from repro.agg.partial import Partial

        state = {}
        holder = envelope.child("state")
        if holder is not None:
            for part in holder.element_children("part"):
                region = _decode_id_path(part.child("path"))
                state[region] = (Partial.from_attrs(part.attrib),
                                 float(part.get("ts")))
        return cls(
            in_reply_to=int(envelope.get("replyTo")),
            state=state,
            sender=envelope.get("sender"),
            message_id=int(envelope.get("id")),
        )

    def __repr__(self):
        return (f"PartialAggregateAnswer(id={self.message_id}, "
                f"replyTo={self.in_reply_to}, entries={len(self.state)}, "
                f"sender={self.sender!r}{self._repr_size()})")


def _peek_envelope_int(text, attr):
    """An integer attribute of the envelope's opening tag, or ``None``.

    A plain string scan -- no XML parse -- bounded to the first ``>``,
    which (attribute values being escaped by our serializer) closes the
    envelope tag.  Used on hot paths that must correlate or shed frames
    without paying for a full decode: the pipelined client matching
    replies, and the reactor's overload shedding.
    """
    end = text.find(">")
    head = text if end == -1 else text[:end]
    needle = f' {attr}="'
    position = head.find(needle)
    if position == -1:
        return None
    position += len(needle)
    stop = head.find('"', position)
    if stop == -1:
        return None
    try:
        return int(head[position:stop])
    except ValueError:
        return None


def peek_message_id(text):
    """The encoded message's ``id`` without decoding it (or ``None``)."""
    return _peek_envelope_int(text, "id")


def peek_reply_to(text):
    """The encoded reply's correlation id without decoding it.

    Every reply kind (answer, batch-answer, error, ack) carries
    ``replyTo`` -- the id of the request it answers -- so a pipelined
    connection can route a frame to its waiter before (and without)
    parsing the XML.  ``None`` marks a frame with no correlation id
    (e.g. a bare error for an undecodable request): the caller falls
    back to serial, oldest-first delivery.
    """
    return _peek_envelope_int(text, "replyTo")


def clean_results(results):
    """Strip system attributes from a result list (defensive copy)."""
    cleaned = []
    for result in results:
        if isinstance(result, Element):
            cleaned.append(strip_internal_attributes(result.copy()))
        else:
            cleaned.append(result)
    return cleaned


_KINDS = {
    cls.kind: cls
    for cls in (QueryMessage, AnswerMessage, BatchQueryMessage,
                BatchAnswerMessage, ErrorMessage, UpdateMessage,
                AckMessage, AdoptMessage, MigrateReleaseMessage,
                ReplicaRetireMessage, ReplicateMessage,
                RehydrateRequest, RehydrateAnswer,
                PartialAggregateRequest, PartialAggregateAnswer)
}
