"""A DNS-style hierarchical name service (Section 3.4).

The paper maps every IDable node to a DNS name built from the IDs on
its root path (``pittsburgh.allegheny.pa.ne.parking.intel-iris.net``)
and stores the node-to-site mapping *only* in DNS -- never in site
databases -- so remapping a node is a single record update.

:class:`DnsServer` is the authoritative store; each client or site
resolves through its own :class:`DnsResolver`, which caches entries
with a TTL.  A first lookup costs several "hops" (modelling the
recursive walk to the authoritative server); subsequent lookups are
served from the nearby cache, exactly the behaviour the paper's
self-starting queries rely on.
"""

import threading
from collections import OrderedDict

from repro.net.errors import NameNotFound
from repro.xpath.analysis import dns_name_for_id_path


class DnsRecord:
    """One name-to-site binding."""

    __slots__ = ("name", "site", "version")

    def __init__(self, name, site, version=0):
        self.name = name
        self.site = site
        self.version = version

    def __repr__(self):
        return f"DnsRecord({self.name!r} -> {self.site!r} v{self.version})"


class DnsServer:
    """The authoritative name server for one service zone."""

    def __init__(self, service="parking", zone="intel-iris.net"):
        self.service = service
        self.zone = zone
        self._records = {}
        self._subscribers = []
        self.stats = {"lookups": 0, "updates": 0, "registrations": 0,
                      "remaps": 0, "invalidations": 0}

    def name_for(self, id_path):
        """The DNS name of the IDable node at *id_path*."""
        return dns_name_for_id_path(id_path, service=self.service,
                                    zone=self.zone)

    # ------------------------------------------------------------------
    def subscribe(self, callback):
        """Invalidation fan-out: call ``callback(name, site)`` whenever
        an existing record is re-pointed.

        Resolver caches are TTL-bounded, so a re-mapped record would
        otherwise keep routing stale for up to a TTL.  Subscribers
        (the cluster wires one per resolver when rebalancing is on)
        drop the cached entry immediately, so the very next query
        routes to the new owner.
        """
        self._subscribers.append(callback)

    def _notify(self, name, site):
        for callback in list(self._subscribers):
            callback(name, site)
        if self._subscribers:
            self.stats["invalidations"] += 1

    def register(self, name, site):
        """Create or replace the record for *name*."""
        record = self._records.get(name)
        if record is None:
            self._records[name] = DnsRecord(name, site)
        else:
            record.site = site
            record.version += 1
            self._notify(name, site)
        self.stats["registrations"] += 1

    def register_id_path(self, id_path, site):
        self.register(self.name_for(id_path), site)

    def update(self, name, site):
        """Re-point an existing record (ownership migration, step 4)."""
        record = self._records.get(name)
        if record is None:
            raise NameNotFound(f"no DNS record for {name!r}")
        record.site = site
        record.version += 1
        self.stats["updates"] += 1
        self._notify(name, site)

    def remap(self, id_path, site):
        """Point *id_path* at *site*, record-or-register.

        Ownership migration flips existing records; a fragment *split*
        moves a subtree that never had its own record (it was covered
        by an ancestor's), so the more-specific name must be created.
        ``route_query``'s longest-prefix walk then finds it first.
        """
        name = self.name_for(id_path)
        if name in self._records:
            self.update(name, site)
        else:
            self.register(name, site)
        self.stats["remaps"] += 1
        return name

    def authoritative_site(self, id_path):
        """The owner DNS names for *id_path*: longest registered
        prefix wins.  Reads the records directly (no resolver cache,
        no lookup accounting) -- this is the reconciliation oracle,
        not a query path."""
        path = tuple(tuple(entry) for entry in id_path)
        while path:
            record = self._records.get(self.name_for(path))
            if record is not None:
                return record.site
            path = path[:-1]
        return None

    def remove(self, name):
        self._records.pop(name, None)

    def lookup(self, name):
        """Authoritative lookup; raises :class:`NameNotFound`."""
        self.stats["lookups"] += 1
        record = self._records.get(name)
        if record is None:
            raise NameNotFound(f"no DNS record for {name!r}")
        return record

    def known_names(self):
        return sorted(self._records)

    def __len__(self):
        return len(self._records)


class DnsResolver:
    """A caching resolver, one per client or site.

    ``resolve`` returns ``(site, hops)``: *hops* is 0 on a cache hit
    and ``miss_hops`` on a miss, feeding the simulator's latency model.

    The cache is a bounded LRU (``max_entries``; a real resolver never
    holds the whole zone) and is safe to share between the fan-out
    worker threads of one agent.  Evictions are counted in
    ``stats["evictions"]``.
    """

    def __init__(self, server, clock=None, ttl=60.0, miss_hops=3,
                 max_entries=1024):
        self.server = server
        self.clock = clock or (lambda: 0.0)
        self.ttl = ttl
        self.miss_hops = miss_hops
        self.max_entries = max_entries
        self._cache = OrderedDict()  # name -> (site, expires_at)
        self._lock = threading.Lock()
        self.stats = {"hits": 0, "misses": 0, "evictions": 0,
                      "invalidations": 0}

    def resolve(self, name):
        now = self.clock()
        with self._lock:
            cached = self._cache.get(name)
            if cached is not None and cached[1] > now:
                self._cache.move_to_end(name)
                self.stats["hits"] += 1
                return cached[0], 0
        record = self.server.lookup(name)
        with self._lock:
            self._cache[name] = (record.site, now + self.ttl)
            self._cache.move_to_end(name)
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
                self.stats["evictions"] += 1
            self.stats["misses"] += 1
        return record.site, self.miss_hops

    def resolve_id_path(self, id_path):
        return self.resolve(self.server.name_for(id_path))

    def invalidate(self, name=None):
        """Drop one cached entry, or the whole cache.

        The retry layer calls this between attempts so a re-resolution
        reaches the authoritative server -- a stale entry pointing at a
        dead or former owner is a prime cause of repeated failures.
        """
        with self._lock:
            if name is None:
                self._cache.clear()
            else:
                self._cache.pop(name, None)
            self.stats["invalidations"] += 1
