"""Deterministic, seeded fault injection over any transport.

:class:`FaultyNetwork` wraps a network exposing the standard
``request``/``tell`` interface (:class:`~repro.net.transport.LoopbackNetwork`,
:class:`~repro.net.tcpruntime.TcpNetwork`, the simulator's tracing
variant) and injects the failure modes of a wide-area deployment:

- **drops** -- the request never reaches the peer (raises
  :class:`InjectedFault`, an ``OSError``, exactly what a dead link
  looks like to the retry layer);
- **resets** -- the request *is* delivered and processed but the reply
  is lost (connection reset between send and receive; exercises
  at-least-once semantics);
- **error replies** -- the peer answers with a retryable
  :class:`~repro.net.messages.ErrorMessage` instead of an answer;
- **delays** -- the request is slowed by ``delay`` seconds;
- **site crashes** -- every request to a crashed site fails until
  :meth:`recover` (schedulable mid-test for crash/recovery scenarios).

Decisions are *deterministic*: each (src, dst) link keeps a request
counter, and the fault draw for request *n* on a link is a BLAKE2 hash
of ``(seed, src, dst, n)``.  A fixed seed therefore reproduces the
same fault pattern for the same per-link request sequence regardless
of thread interleaving, ``PYTHONHASHSEED``, or which transport is
underneath.
"""

import threading
import time

from repro.net.messages import ErrorMessage
from repro.net.retry import hash_fraction


class InjectedFault(ConnectionError):
    """A transport failure injected by :class:`FaultyNetwork`.

    Subclasses ``ConnectionError`` (an ``OSError``) so the retry layer
    treats injected faults exactly like real transport failures.
    """


class SiteDown(InjectedFault):
    """The destination site is crashed (by schedule or :meth:`crash`)."""


class FaultyNetwork:
    """A seeded chaos wrapper around a real transport.

    One fraction is drawn per request and mapped onto the fault ranges
    in a fixed order -- drop, reset, error reply, delay -- so the rates
    are mutually exclusive probabilities (their sum must stay <= 1).
    Everything else (registration, traffic accounting, pool stats,
    ``requires_serial_dispatch``...) is delegated to the wrapped
    network untouched.
    """

    def __init__(self, inner, seed=0, drop_rate=0.0, reset_rate=0.0,
                 error_rate=0.0, delay_rate=0.0, delay=0.0,
                 down_sites=(), sleep=time.sleep):
        total = drop_rate + reset_rate + error_rate + delay_rate
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fault rates sum to {total}, must be <= 1")
        for name, rate in (("drop_rate", drop_rate),
                           ("reset_rate", reset_rate),
                           ("error_rate", error_rate),
                           ("delay_rate", delay_rate)):
            if rate < 0:
                raise ValueError(f"{name} must be >= 0, got {rate}")
        self.inner = inner
        self.seed = seed
        self.drop_rate = drop_rate
        self.reset_rate = reset_rate
        self.error_rate = error_rate
        self.delay_rate = delay_rate
        self.delay = delay
        self.sleep = sleep
        self._down = set(down_sites)
        self._counters = {}
        self._lock = threading.Lock()
        self._kill_hook = None
        self._restart_hook = None
        self._triggers = []
        self.fault_stats = {
            "requests": 0,
            "drops": 0,
            "resets": 0,
            "error_replies": 0,
            "delays": 0,
            "down_refused": 0,
            "delivered": 0,
            "agent_kills": 0,
            "agent_restarts": 0,
            "triggered": 0,
        }

    # -- crash schedule --------------------------------------------------
    def crash(self, site):
        """Take *site* down: every request to it fails until recovery."""
        with self._lock:
            self._down.add(site)

    def recover(self, site):
        with self._lock:
            self._down.discard(site)

    def is_down(self, site):
        with self._lock:
            return site in self._down

    # -- agent-level kill/restart ---------------------------------------
    def bind_lifecycle(self, kill=None, restart=None):
        """Register the deployment's real site-lifecycle callbacks.

        :meth:`crash`/:meth:`recover` only sever the *transport*: the
        agent object survives with its fragment, cache and
        subscriptions intact, which is a network partition, not a
        process death.  With lifecycle callbacks bound
        (``Cluster.bind_lifecycle`` / ``TcpCluster.bind_lifecycle`` do
        this), :meth:`kill_agent` destroys the agent's in-memory state
        too, and :meth:`restart_agent` brings it back through the
        durability subsystem's checkpoint + WAL replay -- the failure
        mode the paper's consistency story silently assumed away.
        """
        self._kill_hook = kill
        self._restart_hook = restart
        return self

    def kill_agent(self, site):
        """Process death: sever the transport AND destroy agent state."""
        self.crash(site)
        if self._kill_hook is not None:
            self._kill_hook(site)
        self._count("agent_kills")

    def restart_agent(self, site):
        """Recover *site* from durable state, then restore the link."""
        if self._restart_hook is not None:
            self._restart_hook(site)
        self.recover(site)
        self._count("agent_restarts")

    # -- targeted triggers ----------------------------------------------
    def add_trigger(self, kind, action="drop", src=None, dst=None, times=1):
        """Arm a deterministic fault for specific messages.

        The probabilistic rates above model background weather; a
        *trigger* instead fires on the next *times* messages whose
        ``message.kind`` equals *kind* (and whose endpoints match
        *src*/*dst* when given), regardless of the seeded draw.  That
        is what migration-step chaos needs: "drop exactly the adopt
        request", "reset exactly the adopt reply", "kill the adopter
        the moment the adopt arrives" -- reproducible without tuning
        rates until the right message happens to lose the lottery.

        *action* is one of ``"drop"``, ``"reset"``, ``"error"`` or
        ``"kill"`` (crash the destination agent via the bound
        lifecycle hooks, then fail the request).
        """
        if action not in ("drop", "reset", "error", "kill"):
            raise ValueError(f"unknown trigger action {action!r}")
        with self._lock:
            self._triggers.append({
                "kind": kind, "action": action,
                "src": src, "dst": dst, "left": int(times),
            })

    def _match_trigger(self, src, dst, message):
        kind = getattr(message, "kind", None)
        with self._lock:
            for trigger in self._triggers:
                if trigger["left"] <= 0:
                    continue
                if trigger["kind"] != kind:
                    continue
                if trigger["src"] is not None and trigger["src"] != src:
                    continue
                if trigger["dst"] is not None and trigger["dst"] != dst:
                    continue
                trigger["left"] -= 1
                self.fault_stats["triggered"] += 1
                return trigger["action"]
        return None

    # -- fault draws -----------------------------------------------------
    def _draw(self, src, dst):
        """The deterministic fraction for this link's next request."""
        with self._lock:
            sequence = self._counters.get((src, dst), 0)
            self._counters[(src, dst)] = sequence + 1
            self.fault_stats["requests"] += 1
        return hash_fraction(self.seed, src, dst, sequence)

    def _count(self, key):
        with self._lock:
            self.fault_stats[key] += 1

    def _decide(self, src, dst):
        """``(fault or None)`` for the next request on this link."""
        if self.is_down(dst):
            self._count("down_refused")
            return "down"
        fraction = self._draw(src, dst)
        edge = self.drop_rate
        if fraction < edge:
            self._count("drops")
            return "drop"
        edge += self.reset_rate
        if fraction < edge:
            self._count("resets")
            return "reset"
        edge += self.error_rate
        if fraction < edge:
            self._count("error_replies")
            return "error"
        edge += self.delay_rate
        if fraction < edge:
            self._count("delays")
            return "delay"
        return None

    # -- transport interface --------------------------------------------
    def request(self, src, dst, message):
        triggered = self._match_trigger(src, dst, message)
        if triggered == "kill":
            self.kill_agent(dst)
            raise SiteDown(
                f"injected: site {dst!r} killed on {message.kind}")
        if triggered == "drop":
            raise InjectedFault(
                f"injected: {message.kind} {src!r}->{dst!r} dropped "
                "(trigger)")
        if triggered == "reset":
            self.inner.request(src, dst, message)
            raise InjectedFault(
                f"injected: connection {src!r}->{dst!r} reset before "
                "reply (trigger)")
        if triggered == "error":
            return ErrorMessage(message.message_id, code="injected-error",
                                detail="injected error reply (trigger)",
                                retryable=True, sender=dst)
        fault = self._decide(src, dst)
        if fault == "down":
            raise SiteDown(f"injected: site {dst!r} is down")
        if fault == "drop":
            raise InjectedFault(
                f"injected: {message.kind} {src!r}->{dst!r} dropped")
        if fault == "reset":
            # Delivered and processed -- only the reply is lost.
            self.inner.request(src, dst, message)
            raise InjectedFault(
                f"injected: connection {src!r}->{dst!r} reset before reply")
        if fault == "error":
            return ErrorMessage(message.message_id, code="injected-error",
                                detail="injected error reply",
                                retryable=True, sender=dst)
        if fault == "delay" and self.delay > 0:
            self.sleep(self.delay)
        reply = self.inner.request(src, dst, message)
        self._count("delivered")
        return reply

    def tell(self, src, dst, message):
        """One-way send: injected losses vanish silently, as on a WAN."""
        triggered = self._match_trigger(src, dst, message)
        if triggered == "kill":
            self.kill_agent(dst)
            return
        if triggered in ("drop", "reset", "error"):
            return
        fault = self._decide(src, dst)
        if fault in ("down", "drop"):
            return
        if fault == "error":
            return  # the sender ignores replies anyway
        if fault == "delay" and self.delay > 0:
            self.sleep(self.delay)
        self.inner.tell(src, dst, message)
        if fault != "reset":
            self._count("delivered")

    def __getattr__(self, name):
        # Registration, traffic log, pool stats, close()... all behave
        # as if the wrapper were not there.
        return getattr(self.inner, name)
