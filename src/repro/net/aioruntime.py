"""Reactor TCP runtime: one event loop per site, pipelined clients.

The threaded runtime (:mod:`repro.net.tcpruntime`) spends one OS
thread per connection, which caps a site at a few hundred sockets and
pays a scheduler wake-up per frame.  This module serves the *same*
agents, speaking the *same* wire format, from a single
:mod:`asyncio` event loop per site:

:class:`AsyncSiteServer`
    a reactor hosting one organizing agent.  The loop owns every
    socket; frames are decoded incrementally
    (:class:`~repro.net.framing.FrameAssembler`), admission-checked by
    the same bounded :class:`~repro.net.tcpruntime.AdmissionGate` the
    threaded server uses, and handed to a small worker pool that runs
    ``handle_message`` under the agent lock.  Replies are written back
    from the loop as they complete -- out of order across a pipelined
    connection, matched by the ``replyTo`` correlation id already in
    the envelope.  Read-side backpressure: when the admission queue
    crosses its high watermark the loop pauses reading on the
    connections producing the load (``pause_reading``), resuming at
    the low watermark; past ``max_pending`` the request is still shed
    with the retryable ``server-overloaded`` error, so PR 3's backoff
    composes unchanged.

:class:`PipelinedTcpNetwork`
    the synchronous client shim.  It subclasses
    :class:`~repro.net.tcpruntime.TcpNetwork` -- same ``request``/
    ``tell`` interface, same retry/breaker/tracing layers above it --
    but multiplexes many in-flight exchanges over a few long-lived
    connections per site: each request registers a waiter keyed by its
    ``message_id``, frames go out back-to-back, and a per-connection
    reader thread routes each reply to its waiter by the ``replyTo``
    it carries.  A reply with no usable correlation id (an old or
    foreign peer speaking strictly serial framing) is handed to the
    oldest outstanding waiter and the connection drops to serial mode
    for good -- the compatibility fallback.  With ``pipelining=False``
    the class degrades to the inherited serial exchange, byte- and
    ordering-identical to the threaded client.

Either side composes with the other runtime freely: a pipelined
client against the threaded server simply sees in-order replies, and a
serial client against the reactor has one frame in flight at a time.
"""

import asyncio
import logging
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from repro.net.errors import FrameTooLarge, NetError
from repro.net.framing import FrameAssembler, FrameReader, encode_frame
from repro.net.messages import (
    ErrorMessage,
    Message,
    peek_message_id,
    peek_reply_to,
)
from repro.net.tcpruntime import AdmissionGate, TcpNetwork, _close_quietly
from repro.obs.tracing import TRACER, attach_context

logger = logging.getLogger(__name__)


class _SiteProtocol(asyncio.Protocol):
    """One accepted connection on the reactor."""

    __slots__ = ("server", "assembler", "transport", "paused", "closing")

    def __init__(self, server):
        self.server = server
        self.assembler = FrameAssembler()
        self.transport = None
        self.paused = False
        self.closing = False

    def connection_made(self, transport):
        self.transport = transport
        self.server._register_protocol(self)

    def connection_lost(self, exc):
        self.closing = True
        self.server._unregister_protocol(self)

    def data_received(self, data):
        try:
            payloads = self.assembler.feed(data)
        except FrameTooLarge as exc:
            self.server._shed_oversized(self, exc)
            return
        for payload in payloads:
            self.server._dispatch(self, payload)


class AsyncSiteServer:
    """One site's OA behind a reactor: a single event loop, thousands
    of sockets, a bounded handler pool.

    Drop-in lifecycle-compatible with
    :class:`~repro.net.tcpruntime.TcpSiteServer` (``start`` /
    ``begin_drain`` / ``wait_drained`` / ``stop`` / ``server_stats`` /
    ``address``), so :class:`~repro.net.tcpruntime.TcpCluster`,
    durability drain and the chaos kill/restart path drive it
    unchanged.

    The loop thread only moves bytes: framing, admission, backpressure
    and reply writes.  Decoding, ``handle_message`` (under the agent
    lock, mirroring one-OA-per-site) and encoding run on
    ``handler_workers`` pool threads, so a slow handler never stalls
    frame intake on other connections.  ``pause_watermark`` /
    ``resume_watermark`` (defaults: 3/4 and 1/4 of ``max_pending``)
    bound how deep the admitted queue grows before the reactor stops
    *reading* from the offending connections -- backpressure that
    reaches the peer through TCP flow control instead of unbounded
    buffering, while overload past ``max_pending`` still answers the
    retryable ``server-overloaded`` error.
    """

    def __init__(self, agent, host="127.0.0.1", port=0, max_pending=64,
                 handler_workers=2, pause_watermark=None,
                 resume_watermark=None, wan_rtt=0.0,
                 service_delay=0.0):
        from repro.obs.registry import Gauge

        self.agent = agent
        #: Emulated wide-area round-trip time per request (seconds),
        #: mirroring :class:`~repro.net.tcpruntime.TcpSiteServer`'s
        #: knob.  On the reactor the delay is a ``call_later`` timer --
        #: no thread sleeps, so pipelined frames keep streaming in and
        #: their delays overlap, exactly as propagation delays overlap
        #: on a real wide-area pipe.
        self.wan_rtt = wan_rtt
        #: Emulated per-request service time (seconds), slept under the
        #: agent lock on a handler-pool thread -- same per-machine
        #: capacity model as the threaded server's knob.
        self.service_delay = service_delay
        self.agent_lock = threading.Lock()
        self.host = host
        self._requested_port = port
        self.max_pending = max_pending
        site = getattr(agent, "site_id", "site")
        self.site_id = site
        self.queue_depth = Gauge(f"{site}.queue_depth")
        self.open_connections = Gauge(f"{site}.open_connections")
        self.gate = AdmissionGate(max_pending, self.queue_depth)
        if pause_watermark is None:
            pause_watermark = max(1, (max_pending * 3) // 4)
        if resume_watermark is None:
            resume_watermark = max(0, max_pending // 4)
        if resume_watermark >= pause_watermark:
            resume_watermark = pause_watermark - 1
        self.pause_watermark = pause_watermark
        self.resume_watermark = resume_watermark
        self._pool = ThreadPoolExecutor(
            max_workers=handler_workers,
            thread_name_prefix=f"reactor-{site}")
        self._loop = None
        self._server = None
        self._thread = None
        self._address = None
        self._ready = threading.Event()
        self._startup_error = None
        self._protocols = set()   # loop-confined
        self._paused = set()      # loop-confined
        self.reactor_stats = {
            "connections_accepted": 0, "frames_in": 0, "replies_out": 0,
            "read_pauses": 0, "read_resumes": 0, "oversized_frames": 0,
            "max_connections": 0,
        }

    # -- lifecycle ------------------------------------------------------
    def start(self):
        self._thread = threading.Thread(target=self._run_loop, daemon=True)
        self._thread.start()
        self._ready.wait(10.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self._address is None:
            raise NetError(f"reactor for {self.site_id!r} failed to start")
        return self

    def _run_loop(self):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(loop.create_server(
                lambda: _SiteProtocol(self), self.host,
                self._requested_port))
            self._address = self._server.sockets[0].getsockname()[:2]
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            try:
                loop.run_until_complete(self._server.wait_closed())
            except RuntimeError:
                pass
            loop.close()

    @property
    def address(self):
        return self._address

    @property
    def draining(self):
        return self.gate.draining

    @property
    def stats(self):
        return self.gate.stats

    def _call_on_loop(self, fn, timeout=5.0):
        """Run *fn* on the loop thread and wait for it (no-op when the
        loop is already gone)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        done = threading.Event()

        def runner():
            try:
                fn()
            finally:
                done.set()

        try:
            loop.call_soon_threadsafe(runner)
        except RuntimeError:
            return
        done.wait(timeout)

    def begin_drain(self):
        """Stop accepting; shed new requests; let in-flight finish."""
        self.gate.begin_drain()
        self._call_on_loop(lambda: self._server.close())

    def wait_drained(self, timeout=5.0):
        """Block until in-flight requests finished, then flush the WAL."""
        drained = self.gate.wait_idle(timeout)
        if getattr(self.agent, "durability", None) is not None:
            self.agent.durability.flush()
        return drained

    def stop(self, drain=True, timeout=5.0):
        """Tear the reactor down; graceful by default, abrupt for chaos.

        Without *drain*, established connections are aborted (a process
        kill severs them too -- peers must not keep talking to a zombie
        of the killed agent), queued work is cancelled, and the loop
        stops immediately.
        """
        if drain:
            self.begin_drain()
            self.wait_drained(timeout)

        def teardown():
            self._server.close()
            for proto in list(self._protocols):
                if proto.transport is not None:
                    proto.transport.abort()
            self._protocols.clear()
            self._paused.clear()
            self._loop.stop()

        self._call_on_loop(teardown)
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._pool.shutdown(wait=False, cancel_futures=True)

    # -- connection bookkeeping (loop thread) ---------------------------
    def _register_protocol(self, proto):
        self._protocols.add(proto)
        self.reactor_stats["connections_accepted"] += 1
        count = len(self._protocols)
        if count > self.reactor_stats["max_connections"]:
            self.reactor_stats["max_connections"] = count
        self.open_connections.set(count)

    def _unregister_protocol(self, proto):
        self._protocols.discard(proto)
        self._paused.discard(proto)
        self.open_connections.set(len(self._protocols))

    # -- backpressure (loop thread) -------------------------------------
    def _maybe_pause(self, proto):
        if proto.paused or proto.closing:
            return
        if self.gate.pending >= self.pause_watermark:
            try:
                proto.transport.pause_reading()
            except RuntimeError:
                return
            proto.paused = True
            self._paused.add(proto)
            self.reactor_stats["read_pauses"] += 1

    def _maybe_resume(self):
        if not self._paused or self.gate.pending > self.resume_watermark:
            return
        for proto in list(self._paused):
            if not proto.closing and proto.transport is not None:
                try:
                    proto.transport.resume_reading()
                    self.reactor_stats["read_resumes"] += 1
                except RuntimeError:
                    pass
            proto.paused = False
        self._paused.clear()

    # -- request path ---------------------------------------------------
    def _shed_oversized(self, proto, exc):
        """Frame-too-large: structured refusal, then close (the stream
        cannot be resynchronised past a lying length prefix)."""
        self.reactor_stats["oversized_frames"] += 1
        reply = ErrorMessage(0, code="frame-too-large", detail=str(exc),
                             retryable=False, sender=self.site_id)
        if not proto.closing and proto.transport is not None:
            proto.transport.write(encode_frame(reply.encode()))
            proto.transport.close()
        proto.closing = True

    def _dispatch(self, proto, payload):
        """Admission + hand-off for one frame (loop thread)."""
        self.reactor_stats["frames_in"] += 1
        if self.wan_rtt:
            self._loop.call_later(self.wan_rtt, self._admit_and_run,
                                  proto, payload)
            return
        self._admit_and_run(proto, payload)

    def _admit_and_run(self, proto, payload):
        if not self.gate.admit():
            # Shed before decoding: the overload reply only needs the
            # request's envelope id, peeked without an XML parse, so a
            # melting site spends microseconds per rejected frame.
            draining = self.gate.draining
            reply = ErrorMessage(
                peek_message_id(payload) or 0, code="server-overloaded",
                detail=("draining for shutdown" if draining
                        else "inbound queue full"),
                retryable=True, sender=self.site_id)
            if not proto.closing and proto.transport is not None:
                proto.transport.write(encode_frame(reply.encode()))
                if draining:
                    # The rejection is the connection's last frame: the
                    # pooled socket dies and the client re-dials
                    # elsewhere (or fails fast) next time.
                    proto.transport.close()
                    proto.closing = True
            return
        self._maybe_pause(proto)
        future = self._loop.run_in_executor(self._pool, self._process,
                                            payload)
        future.add_done_callback(
            lambda fut, proto=proto: self._reply(proto, fut))

    def _process(self, payload):
        """Decode, handle, encode -- on a worker thread; returns the
        framed reply bytes (``b""`` for reply-less messages).

        Mirrors the threaded handler's error semantics exactly: an
        undecodable frame or a handler crash is a structured reply,
        never a dead socket.
        """
        try:
            message = Message.decode(payload)
        except Exception as exc:  # XmlParseError, MessageError, ...
            logger.warning("site %r: undecodable frame: %s",
                           self.site_id, exc)
            reply = ErrorMessage(0, code="bad-message",
                                 detail=f"{type(exc).__name__}: {exc}",
                                 retryable=False, sender=self.site_id)
            return encode_frame(reply.encode())
        with TRACER.span("tcp-serve", site=self.site_id,
                         remote_parent=message.trace_ctx) as serve_span:
            try:
                with self.agent_lock:
                    if self.service_delay:
                        time.sleep(self.service_delay)
                    reply = self.agent.handle_message(message)
                    # Encoding stays under the lock: serializing the
                    # reply touches shared site state (the
                    # serialization-memo write-back), so it must not
                    # race with another handler mutating the fragment.
                    out = reply.encode() if reply is not None else ""
            except Exception as exc:
                logger.exception("site %r: handler failed on %s",
                                 self.site_id, type(message).__name__)
                reply = ErrorMessage(message.message_id,
                                     code="handler-error",
                                     detail=f"{type(exc).__name__}: {exc}",
                                     retryable=False, sender=self.site_id)
                attach_context(reply, serve_span)
                out = reply.encode()
        return encode_frame(out)

    def _reply(self, proto, future):
        """Write one completed reply (loop thread, via done-callback)."""
        self.gate.release()
        self._maybe_resume()
        try:
            data = future.result()
        except Exception:  # _process never raises by design; belt+braces
            logger.exception("site %r: reply pipeline failed", self.site_id)
            return
        if data and not proto.closing and proto.transport is not None \
                and not proto.transport.is_closing():
            proto.transport.write(data)
            self.reactor_stats["replies_out"] += 1

    # -- stats ----------------------------------------------------------
    def server_stats(self):
        """Queue/overload counters plus reactor-specific gauges."""
        out = self.gate.snapshot()
        out.update(self.reactor_stats)
        out["open_connections"] = len(self._protocols)
        out["pause_watermark"] = self.pause_watermark
        out["resume_watermark"] = self.resume_watermark
        return out


class _Waiter:
    """One in-flight pipelined request's parking spot."""

    __slots__ = ("event", "payload", "error")

    def __init__(self):
        self.event = threading.Event()
        self.payload = None
        self.error = None


class _PipelinedConnection:
    """One shared socket carrying many in-flight framed exchanges.

    Senders register a :class:`_Waiter` under their request's
    ``message_id``, write the frame (sends are serialized by a lock;
    the frames themselves interleave freely on the wire) and block on
    the waiter.  A dedicated reader thread pulls frames off the socket
    (zero-copy :class:`~repro.net.framing.FrameReader`) and routes each
    to its waiter by the ``replyTo`` correlation id.

    Compatibility fallback: a reply with no usable correlation id --
    an old peer speaking strictly serial framing, or a bare
    ``replyTo="0"`` error for a frame the peer could not decode -- is
    delivered to the *oldest* outstanding waiter, and the connection
    flips to ``serial_only`` (one in-flight at a time) for the rest of
    its life, which is exactly the regime such a peer assumes.

    A waiter that times out is tombstoned: its late reply, should it
    arrive, is dropped by id instead of tripping the serial fallback.
    """

    def __init__(self, sock, site_id, max_inflight, timeout):
        self.sock = sock
        self.site_id = site_id
        self.timeout = timeout
        self.reader = FrameReader(sock)
        self.closed = False
        self.serial_only = False
        self.inflight = 0
        self.max_inflight_seen = 0
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._serial_lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(max_inflight)
        self._pending = {}
        self._order = []
        self._abandoned = set()
        self._thread = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"pipeline-{site_id}")
        self._thread.start()

    # -- sender side ----------------------------------------------------
    def exchange(self, corr_id, encoded):
        """One request/reply, pipelined; blocks only this caller."""
        self._slots.acquire()
        try:
            if self.serial_only:
                with self._serial_lock:
                    return self._exchange_once(corr_id, encoded)
            return self._exchange_once(corr_id, encoded)
        finally:
            self._slots.release()

    def send_async(self, corr_id, encoded):
        """Fire one request; returns the waiter (completion is the
        reader thread setting its event).  The open-loop generator uses
        this to hold hundreds of requests in flight from one thread."""
        self._slots.acquire()
        try:
            return self._register_and_send(corr_id, encoded)
        finally:
            self._slots.release()

    def _register_and_send(self, corr_id, encoded):
        waiter = _Waiter()
        with self._lock:
            if self.closed:
                raise NetError(
                    f"pipelined connection to {self.site_id!r} is closed")
            self._pending[corr_id] = waiter
            self._order.append(corr_id)
            self.inflight += 1
            if self.inflight > self.max_inflight_seen:
                self.max_inflight_seen = self.inflight
        data = encode_frame(encoded)
        try:
            with self._send_lock:
                self.sock.sendall(data)
        except OSError:
            self._forget(corr_id)
            raise
        return waiter

    def _exchange_once(self, corr_id, encoded):
        waiter = self._register_and_send(corr_id, encoded)
        if not waiter.event.wait(self.timeout):
            self._forget(corr_id, abandoned=True)
            raise NetError(
                f"pipelined reply from {self.site_id!r} timed out")
        if waiter.error is not None:
            raise waiter.error
        return waiter.payload

    def _forget(self, corr_id, abandoned=False):
        with self._lock:
            if self._pending.pop(corr_id, None) is not None:
                self.inflight -= 1
                if abandoned:
                    self._abandoned.add(corr_id)
            if not self._pending:
                self._order.clear()
                self._abandoned.clear()

    # -- reader side ----------------------------------------------------
    def _read_loop(self):
        error = None
        try:
            while True:
                payload = self.reader.recv_frame()
                if payload is None:
                    break  # clean close
                self._deliver(peek_reply_to(payload), payload)
        except (OSError, NetError) as exc:
            error = exc
        self._fail_all(error or NetError(
            f"connection to {self.site_id!r} closed"))

    def _deliver(self, corr_id, payload):
        fell_back = False
        with self._lock:
            waiter = None
            if corr_id is not None:
                waiter = self._pending.pop(corr_id, None)
                if waiter is None and corr_id in self._abandoned:
                    self._abandoned.discard(corr_id)
                    return  # late reply to a timed-out request: drop
            if waiter is None:
                # No usable correlation id: serial-peer fallback.
                self.serial_only = True
                fell_back = True
                while self._order:
                    oldest = self._order.pop(0)
                    waiter = self._pending.pop(oldest, None)
                    if waiter is not None:
                        break
            if waiter is not None:
                self.inflight -= 1
            if not self._pending:
                self._order.clear()
                self._abandoned.clear()
        if waiter is not None:
            waiter.payload = payload
            waiter.event.set()
        elif not fell_back:
            logger.warning("pipeline to %r: unmatched reply dropped",
                           self.site_id)
        return fell_back

    def _fail_all(self, error):
        with self._lock:
            self.closed = True
            victims = list(self._pending.values())
            self._pending.clear()
            self._order.clear()
            self._abandoned.clear()
            self.inflight = 0
        for waiter in victims:
            waiter.error = error
            waiter.event.set()
        _close_quietly(self.sock)

    def close(self):
        self._fail_all(NetError(
            f"pipelined connection to {self.site_id!r} closed locally"))


class PipelinedTcpNetwork(TcpNetwork):
    """A :class:`TcpNetwork` whose exchanges pipeline over shared
    connections.

    The synchronous ``request``/``tell`` surface -- and everything
    stacked on it: retries, circuit breakers, fault injection wrappers,
    tracing, traffic accounting -- is inherited unchanged; only the
    wire occupancy model differs.  Up to ``connections_per_site``
    long-lived connections carry at most ``max_inflight`` concurrent
    frames each; when a pipelined exchange fails, the connection is
    torn down (failing its other waiters fast, like a real reset) and
    the exchange retries once on a fresh serial dial, mirroring the
    pooled-socket retry of the serial client.

    ``pipelining=False`` bypasses all of it and behaves exactly like
    the parent class -- the parity configuration.
    """

    def __init__(self, addresses=None, timeout=10.0, count_bytes=True,
                 max_idle_per_site=8, pipelining=True, max_inflight=32,
                 connections_per_site=2):
        super().__init__(addresses=addresses, timeout=timeout,
                         count_bytes=count_bytes,
                         max_idle_per_site=max_idle_per_site)
        self.pipelining = pipelining
        self.max_inflight = max_inflight
        self.connections_per_site = connections_per_site
        self._pipes = {}
        self._pipe_lock = threading.Lock()
        self.pool_stats.update({"pipelined": 0, "serial_fallbacks": 0,
                                "pipeline_connects": 0,
                                "pipeline_resets": 0,
                                "max_inflight": 0})

    # -- connection management ------------------------------------------
    def _pipe_for(self, dst):
        with self._pipe_lock:
            conns = [c for c in self._pipes.get(dst, ()) if not c.closed]
            self._pipes[dst] = conns
            best = min(conns, key=lambda c: c.inflight, default=None)
            if best is not None and (
                    best.inflight < self.max_inflight
                    or len(conns) >= self.connections_per_site):
                return best
        sock = self._dial(dst)
        sock.settimeout(None)  # the reader blocks; waiters carry timeouts
        conn = _PipelinedConnection(sock, dst, self.max_inflight,
                                    self.timeout)
        with self._pipe_lock:
            conns = self._pipes.setdefault(dst, [])
            if len(conns) >= self.connections_per_site:
                # Lost a dial race; use the established one.
                extra, conn = conn, min(conns, key=lambda c: c.inflight)
                extra.close()
            else:
                conns.append(conn)
                self.pool_stats["pipeline_connects"] += 1
        return conn

    def _drop_pipe(self, dst, conn):
        conn.close()
        with self._pipe_lock:
            conns = self._pipes.get(dst)
            if conns and conn in conns:
                conns.remove(conn)
            self.pool_stats["pipeline_resets"] += 1

    def _note_inflight(self, conn):
        with self._pipe_lock:
            if conn.max_inflight_seen > self.pool_stats["max_inflight"]:
                self.pool_stats["max_inflight"] = conn.max_inflight_seen

    def pipeline_stats(self):
        """Live pipeline gauges (per-site inflight and serial flags)."""
        with self._pipe_lock:
            return {
                site: [{"inflight": conn.inflight,
                        "serial_only": conn.serial_only,
                        "max_inflight_seen": conn.max_inflight_seen}
                       for conn in conns]
                for site, conns in sorted(self._pipes.items()) if conns
            }

    # -- exchange -------------------------------------------------------
    def _exchange(self, dst, encoded, message=None):
        if not self.pipelining or message is None:
            return super()._exchange(dst, encoded, message)
        conn = self._pipe_for(dst)
        serial_before = conn.serial_only
        try:
            payload = conn.exchange(message.message_id, encoded)
        except (OSError, NetError):
            self._drop_pipe(dst, conn)
            # Mirror the serial client's stale-connection semantics:
            # one retry on a fresh (serial) dial before surfacing.
            return super()._exchange(dst, encoded, message)
        with self._lock:
            self.pool_stats["pipelined"] += 1
            if conn.serial_only and not serial_before:
                self.pool_stats["serial_fallbacks"] += 1
        self._note_inflight(conn)
        return payload

    def request_async(self, src, dst, message, decode=True):
        """Fire one request without blocking for the reply.

        Returns a :class:`concurrent.futures.Future` resolving to the
        decoded reply message (or the raw payload string with
        ``decode=False``; ``None`` for an empty reply).  Completion
        runs on the connection's reader thread.  This is what lets an
        open-loop load generator hold hundreds of requests in flight
        from a single dispatcher thread -- the thread-per-in-flight
        cost of the serial client is the bottleneck it measures.
        """
        if not self.pipelining:
            raise NetError("request_async requires pipelining")
        for interceptor in self.interceptors:
            interceptor(src, dst, message)
        self.traffic.record(src, dst, message)
        future = Future()
        conn = self._pipe_for(dst)
        try:
            waiter = conn.send_async(message.message_id, message.encode())
        except (OSError, NetError) as exc:
            self._drop_pipe(dst, conn)
            future.set_exception(exc)
            return future
        with self._lock:
            self.pool_stats["pipelined"] += 1
        self._note_inflight(conn)

        original_set = waiter.event.set

        def completed():
            original_set()
            if waiter.error is not None:
                future.set_exception(waiter.error)
                return
            payload = waiter.payload
            if not payload:
                future.set_result(None)
                return
            if not decode:
                future.set_result(payload)
                return
            try:
                reply = Message.decode(payload)
            except Exception as exc:
                future.set_exception(exc)
                return
            self.traffic.record(dst, src, reply)
            future.set_result(reply)

        waiter.event.set = completed
        # The reply may have raced ahead of the callback installation.
        if waiter.event.is_set():
            completed()
        return future

    def close(self):
        """Close pipelined connections, then the inherited idle pool."""
        with self._pipe_lock:
            conns = [c for cs in self._pipes.values() for c in cs]
            self._pipes.clear()
        for conn in conns:
            conn.close()
        super().close()
