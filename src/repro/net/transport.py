"""Message transport between sites.

:class:`LoopbackNetwork` delivers messages by direct synchronous calls
-- deterministic and fast, used by the integration tests, the examples
and (with the cost model layered on top) the simulator.  The threaded
live runtime in :mod:`repro.net.runtime` provides truly asynchronous
delivery over queues with the same interface.

All traffic is counted (messages and approximate bytes, per link), so
experiments can report communication costs.
"""

from repro.net.errors import UnknownSite


class TrafficLog:
    """Per-link counters of messages and bytes."""

    def __init__(self, count_bytes=False):
        self.count_bytes = count_bytes
        self.messages = 0
        self.bytes = 0
        self.per_link = {}

    def record(self, src, dst, message):
        self.messages += 1
        size = message.encoded_size() if self.count_bytes else 0
        self.bytes += size
        key = (src, dst)
        entry = self.per_link.setdefault(key, [0, 0])
        entry[0] += 1
        entry[1] += size

    def summary(self):
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "links": dict(self.per_link),
        }


class LoopbackNetwork:
    """Synchronous in-process delivery to registered agents.

    Agents implement ``handle_message(message) -> reply | None``.
    ``request`` returns the reply; ``tell`` discards it (one-way).
    """

    def __init__(self, count_bytes=False):
        self._agents = {}
        self.traffic = TrafficLog(count_bytes=count_bytes)
        # Hook for failure-injection tests: callables(src, dst, message)
        # may raise or mutate to simulate loss/corruption.
        self.interceptors = []

    def register(self, site_id, agent):
        self._agents[site_id] = agent

    def unregister(self, site_id):
        self._agents.pop(site_id, None)

    @property
    def sites(self):
        return sorted(self._agents)

    def agent(self, site_id):
        try:
            return self._agents[site_id]
        except KeyError:
            raise UnknownSite(f"no agent registered for site {site_id!r}") \
                from None

    def request(self, src, dst, message):
        """Deliver *message* and return the destination's reply."""
        for interceptor in self.interceptors:
            interceptor(src, dst, message)
        self.traffic.record(src, dst, message)
        reply = self.agent(dst).handle_message(message)
        if reply is not None:
            self.traffic.record(dst, src, reply)
        return reply

    def tell(self, src, dst, message):
        """Deliver *message*, ignoring any reply."""
        self.request(src, dst, message)
