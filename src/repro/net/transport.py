"""Message transport between sites.

:class:`LoopbackNetwork` delivers messages by direct synchronous calls
-- deterministic and fast, used by the integration tests, the examples
and (with the cost model layered on top) the simulator.  The threaded
live runtime in :mod:`repro.net.runtime` provides truly asynchronous
delivery over queues with the same interface.

All traffic is counted (messages and approximate bytes, per link), so
experiments can report communication costs.
"""

import threading

from repro.net.errors import NetError, UnknownSite


class TrafficLog:
    """Per-link counters of messages and bytes (thread-safe)."""

    def __init__(self, count_bytes=False):
        self.count_bytes = count_bytes
        self.messages = 0
        self.bytes = 0
        self.per_link = {}
        self._lock = threading.Lock()

    def record(self, src, dst, message):
        size = message.encoded_size() if self.count_bytes else 0
        with self._lock:
            self.messages += 1
            self.bytes += size
            key = (src, dst)
            entry = self.per_link.setdefault(key, [0, 0])
            entry[0] += 1
            entry[1] += size

    def summary(self):
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "links": dict(self.per_link),
        }


class LoopbackNetwork:
    """Synchronous in-process delivery to registered agents.

    Agents implement ``handle_message(message) -> reply | None``.
    ``request`` returns the reply; ``tell`` discards it (one-way).

    Delivery is serialized per destination site (a reentrant lock per
    site), mirroring the one-process-per-site deployment: an agent
    never sees two messages concurrently, even when a gather round
    fans its subqueries out from several worker threads.  Different
    sites still run genuinely in parallel; subquery chains descend the
    hierarchy, so the lock order is acyclic and deadlock-free.
    """

    def __init__(self, count_bytes=False):
        self._agents = {}
        self.traffic = TrafficLog(count_bytes=count_bytes)
        self._site_locks = {}
        self._site_locks_guard = threading.Lock()
        # Hook for failure-injection tests: callables(src, dst, message)
        # may raise or mutate to simulate loss/corruption.
        self.interceptors = []
        self.tell_failures = 0

    def register(self, site_id, agent):
        self._agents[site_id] = agent

    def unregister(self, site_id):
        self._agents.pop(site_id, None)

    @property
    def sites(self):
        return sorted(self._agents)

    def agent(self, site_id):
        try:
            return self._agents[site_id]
        except KeyError:
            raise UnknownSite(f"no agent registered for site {site_id!r}") \
                from None

    def _lock_for(self, site_id):
        with self._site_locks_guard:
            lock = self._site_locks.get(site_id)
            if lock is None:
                lock = threading.RLock()
                self._site_locks[site_id] = lock
            return lock

    def request(self, src, dst, message):
        """Deliver *message* and return the destination's reply."""
        for interceptor in self.interceptors:
            interceptor(src, dst, message)
        self.traffic.record(src, dst, message)
        with self._lock_for(dst):
            reply = self.agent(dst).handle_message(message)
        if reply is not None:
            self.traffic.record(dst, src, reply)
        return reply

    def tell(self, src, dst, message):
        """Deliver *message* one-way: failures are counted, not raised.

        Mirrors :meth:`TcpNetwork.tell` -- a lost notification must not
        blow up the sender, and the count keeps loss observable.
        """
        try:
            self.request(src, dst, message)
        except (OSError, NetError):
            self.tell_failures += 1

    def close(self):
        """Release per-site delivery locks (repeated start/stop safe)."""
        with self._site_locks_guard:
            self._site_locks.clear()
