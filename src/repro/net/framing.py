"""Length-prefixed wire framing shared by both TCP runtimes.

One frame is a 4-byte big-endian payload length followed by the UTF-8
encoded XML envelope.  The format predates this module (it is what
:mod:`repro.net.tcpruntime` has always spoken); the threaded runtime,
the reactor runtime and the pipelined client all import it from here so
the bytes on the wire stay identical no matter which runtime produced
them.

Two decoding surfaces cover the two I/O styles:

:class:`FrameReader`
    a *pull* decoder for blocking sockets.  It owns one reusable
    ``bytearray`` receive buffer per connection and reads with
    ``recv_into`` + ``memoryview`` slicing -- no per-chunk allocations,
    no chunk-list concatenation -- so a connection serving thousands of
    pipelined frames touches each byte once.

:class:`FrameAssembler`
    a *push* decoder for event-loop callbacks (``data_received`` hands
    us whatever the kernel had): feed bytes in, get completed payloads
    out, carrying partial frames across calls.

Both raise :class:`~repro.net.errors.FrameTooLarge` (a ``NetError``)
on an oversized length prefix, carrying the offending size so servers
can answer with a structured ``frame-too-large`` error before closing.
"""

import struct

from repro.net.errors import FrameTooLarge, NetError

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size

#: Upper bound on one frame's payload.  Anything larger is a protocol
#: violation (or an attack) -- the stream cannot be resynchronised past
#: a lying length prefix, so the connection dies after the error reply.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


def encode_frame(payload):
    """*payload* (``str``) as one wire frame (header + UTF-8 bytes)."""
    data = payload.encode("utf-8")
    return _HEADER.pack(len(data)) + data


def send_framed(sock, payload):
    """Write one length-prefixed message."""
    sock.sendall(encode_frame(payload))


def recv_framed(sock):
    """Read one length-prefixed message; ``None`` on a clean close.

    Reads exactly one frame and not a byte more (callers may hand the
    socket elsewhere afterwards); connection-lifetime readers should
    hold a :class:`FrameReader` instead, which batches reads across
    frames.
    """
    header = bytearray(HEADER_SIZE)
    if not _recv_into_exactly(sock, header, eof_ok=True):
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise FrameTooLarge(length)
    if length == 0:
        return ""
    body = bytearray(length)
    _recv_into_exactly(sock, body, eof_ok=False)
    return body.decode("utf-8")


def _recv_into_exactly(sock, buffer, eof_ok):
    """Fill *buffer* from *sock*; ``False`` on a close before any byte
    (only when *eof_ok*), :class:`NetError` on a close mid-way."""
    with memoryview(buffer) as view:
        filled = 0
        while filled < len(buffer):
            count = sock.recv_into(view[filled:])
            if count == 0:
                if filled == 0 and eof_ok:
                    return False
                raise NetError("connection closed mid-frame")
            filled += count
    return True


class FrameReader:
    """Zero-copy frame decoding for one blocking socket.

    The reader owns a single growable receive buffer; ``recv_into``
    lands bytes directly in it and completed payloads are decoded from
    ``memoryview`` slices.  Bytes beyond the current frame stay
    buffered for the next call, which is what makes pipelining cheap:
    a burst of N frames arrives in O(syscalls), not O(N) of them.
    """

    def __init__(self, sock, limit=MAX_MESSAGE_BYTES, initial_capacity=65536):
        self._sock = sock
        self.limit = limit
        self._buffer = bytearray(max(int(initial_capacity), HEADER_SIZE))
        self._start = 0  # first unconsumed byte
        self._end = 0    # one past the last filled byte

    def buffered(self):
        """Bytes received but not yet consumed (tests/introspection)."""
        return self._end - self._start

    def _reserve(self, needed):
        """Make room for *needed* unconsumed bytes starting at
        ``_start`` by compacting (memmove via slice assignment on the
        same bytearray -- no new allocation) and, only when the frame
        outgrows the buffer, growing it."""
        pending = self._end - self._start
        if self._start and (self._start + needed > len(self._buffer)
                            or self._end == len(self._buffer)):
            self._buffer[:pending] = self._buffer[self._start:self._end]
            self._start, self._end = 0, pending
        if needed > len(self._buffer):
            self._buffer.extend(bytes(needed - len(self._buffer)))

    def _ensure(self, needed, eof_ok):
        """Block until *needed* unconsumed bytes are buffered."""
        while self._end - self._start < needed:
            self._reserve(needed)
            with memoryview(self._buffer) as view:
                count = self._sock.recv_into(view[self._end:])
            if count == 0:
                if self._end == self._start and eof_ok:
                    return False
                raise NetError("connection closed mid-frame")
            self._end += count
        return True

    def recv_frame(self):
        """One payload string; ``None`` on a clean close at a frame
        boundary; :class:`NetError` on a mid-frame close."""
        if not self._ensure(HEADER_SIZE, eof_ok=True):
            return None
        (length,) = _HEADER.unpack_from(self._buffer, self._start)
        if length > self.limit:
            raise FrameTooLarge(length)
        self._start += HEADER_SIZE
        if length == 0:
            payload = ""
        else:
            self._ensure(length, eof_ok=False)
            with memoryview(self._buffer) as view:
                payload = str(view[self._start:self._start + length],
                              "utf-8")
            self._start += length
        if self._start == self._end:
            self._start = self._end = 0
        return payload


class FrameAssembler:
    """Push-style frame decoding for event-loop data callbacks.

    ``feed(data)`` returns every payload completed by *data* (possibly
    none) and keeps the partial tail buffered.  Consumed prefixes are
    reclaimed lazily so a long-lived connection does not shift bytes
    on every frame.
    """

    _RECLAIM_THRESHOLD = 1 << 16

    def __init__(self, limit=MAX_MESSAGE_BYTES):
        self.limit = limit
        self._buffer = bytearray()
        self._offset = 0
        self._frame_length = None  # header parsed, body incomplete

    def buffered(self):
        return len(self._buffer) - self._offset

    def feed(self, data):
        """Append *data*; return the list of completed payloads.

        Raises :class:`FrameTooLarge` as soon as an oversized length
        prefix is parsed -- before waiting for (or buffering) the
        impossible body.
        """
        self._buffer += data
        payloads = []
        while True:
            available = len(self._buffer) - self._offset
            if self._frame_length is None:
                if available < HEADER_SIZE:
                    break
                (self._frame_length,) = _HEADER.unpack_from(
                    self._buffer, self._offset)
                if self._frame_length > self.limit:
                    raise FrameTooLarge(self._frame_length)
                self._offset += HEADER_SIZE
                available -= HEADER_SIZE
            if available < self._frame_length:
                break
            with memoryview(self._buffer) as view:
                payloads.append(str(
                    view[self._offset:self._offset + self._frame_length],
                    "utf-8"))
            self._offset += self._frame_length
            self._frame_length = None
        if self._offset == len(self._buffer):
            del self._buffer[:]
            self._offset = 0
        elif self._offset > self._RECLAIM_THRESHOLD:
            del self._buffer[:self._offset]
            self._offset = 0
        return payloads
