"""A real TCP runtime: organizing agents behind sockets.

The loopback network delivers messages by function call; this module
runs the *same* agents behind actual TCP servers on localhost, speaking
the XML wire format of :mod:`repro.net.messages` with 4-byte big-endian
length framing.  Every byte a deployment would put on the wire goes on
the wire, which keeps the message codec honest and demonstrates that
the system is runnable as separate OS processes (each site only needs
its document fragment, the DNS address and the port map).

:class:`TcpNetwork` implements the same ``request``/``tell`` interface
as :class:`~repro.net.transport.LoopbackNetwork`, so agents are unaware
of which transport carries them.
"""

import socket
import socketserver
import struct
import threading

from repro.net.errors import NetError, UnknownSite
from repro.net.messages import Message
from repro.net.transport import TrafficLog

_HEADER = struct.Struct(">I")
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


def send_framed(sock, payload):
    """Write one length-prefixed message."""
    data = payload.encode("utf-8")
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_framed(sock):
    """Read one length-prefixed message; ``None`` on a clean close."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise NetError(f"frame of {length} bytes exceeds the limit")
    if length == 0:
        return ""
    data = _recv_exactly(sock, length)
    if data is None:
        raise NetError("connection closed mid-frame")
    return data.decode("utf-8")


def _recv_exactly(sock, count):
    """Read exactly *count* bytes; ``None`` on a close before any byte."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise NetError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _AgentRequestHandler(socketserver.BaseRequestHandler):
    def handle(self):
        while True:
            try:
                payload = recv_framed(self.request)
            except NetError:
                return
            if payload is None:
                return
            message = Message.decode(payload)
            with self.server.agent_lock:
                reply = self.server.agent.handle_message(message)
            send_framed(self.request,
                        reply.encode() if reply is not None else "")


class TcpSiteServer(socketserver.ThreadingTCPServer):
    """One site's OA served over TCP (threaded, connection-per-client)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, agent, host="127.0.0.1", port=0):
        super().__init__((host, port), _AgentRequestHandler)
        self.agent = agent
        # The loopback runtime serializes each site with a lock; the
        # TCP runtime does the same, mirroring one-OA-per-site.
        self.agent_lock = threading.Lock()
        self._thread = None

    @property
    def address(self):
        return self.server_address

    def start(self):
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self):
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)


class TcpNetwork:
    """Message delivery over TCP, given a site -> address map."""

    def __init__(self, addresses=None, timeout=10.0, count_bytes=True):
        self.addresses = dict(addresses or {})
        self.timeout = timeout
        self.traffic = TrafficLog(count_bytes=count_bytes)
        self.interceptors = []
        self._connections = {}
        self._lock = threading.Lock()

    def register_address(self, site_id, address):
        self.addresses[site_id] = address

    def _connection(self, site_id):
        try:
            address = self.addresses[site_id]
        except KeyError:
            raise UnknownSite(f"no TCP address for site {site_id!r}") \
                from None
        key = (threading.get_ident(), site_id)
        with self._lock:
            sock = self._connections.get(key)
        if sock is None:
            sock = socket.create_connection(address, timeout=self.timeout)
            with self._lock:
                self._connections[key] = sock
        return key, sock

    def request(self, src, dst, message):
        for interceptor in self.interceptors:
            interceptor(src, dst, message)
        self.traffic.record(src, dst, message)
        key, sock = self._connection(dst)
        try:
            send_framed(sock, message.encode())
            payload = recv_framed(sock)
        except (OSError, NetError):
            with self._lock:
                self._connections.pop(key, None)
            try:
                sock.close()
            except OSError:
                pass
            raise
        if not payload:
            return None
        reply = Message.decode(payload)
        self.traffic.record(dst, src, reply)
        return reply

    def tell(self, src, dst, message):
        self.request(src, dst, message)

    def close(self):
        with self._lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for sock in connections:
            try:
                sock.close()
            except OSError:
                pass


class TcpCluster:
    """A cluster whose sites listen on real localhost sockets.

    Builds the standard :class:`~repro.net.cluster.Cluster`, then hosts
    every agent behind a :class:`TcpSiteServer` and rewires all agents
    (and the client) onto a shared :class:`TcpNetwork`.  Use as a
    context manager to guarantee socket teardown::

        with TcpCluster(document, plan) as tcp:
            results, site, _ = tcp.cluster.query(...)
    """

    def __init__(self, global_document, plan, **cluster_kwargs):
        from repro.net.cluster import Cluster

        self.cluster = Cluster(global_document, plan, **cluster_kwargs)
        self.network = TcpNetwork()
        self.servers = {}
        for site, agent in self.cluster.agents.items():
            server = TcpSiteServer(agent).start()
            self.servers[site] = server
            self.network.register_address(site, server.address)
        for agent in self.cluster.agents.values():
            agent.network = self.network
        self.cluster.network = self.network

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def close(self):
        self.network.close()
        for server in self.servers.values():
            server.stop()
