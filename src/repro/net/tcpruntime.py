"""A real TCP runtime: organizing agents behind sockets.

The loopback network delivers messages by function call; this module
runs the *same* agents behind actual TCP servers on localhost, speaking
the XML wire format of :mod:`repro.net.messages` with 4-byte big-endian
length framing.  Every byte a deployment would put on the wire goes on
the wire, which keeps the message codec honest and demonstrates that
the system is runnable as separate OS processes (each site only needs
its document fragment, the DNS address and the port map).

:class:`TcpNetwork` implements the same ``request``/``tell`` interface
as :class:`~repro.net.transport.LoopbackNetwork`, so agents are unaware
of which transport carries them.
"""

import logging
import select
import socket
import socketserver
import threading
import time

from repro.net.errors import FrameTooLarge, NetError, UnknownSite
from repro.net.framing import (  # noqa: F401  (re-exported: the framing
    MAX_MESSAGE_BYTES,           # helpers lived here before repro.net.framing
    FrameReader,                 # existed, and callers still import them
    recv_framed,                 # from this module)
    send_framed,
)
from repro.net.messages import ErrorMessage, Message
from repro.net.transport import TrafficLog
from repro.obs.tracing import TRACER, attach_context

logger = logging.getLogger(__name__)


class AdmissionGate:
    """Bounded inbound admission, shared by both server runtimes.

    At most *max_pending* requests may be admitted (decoded/queued on
    or holding the agent lock) at once; :meth:`admit` returns ``False``
    beyond that -- the caller sheds the request with a retryable
    ``server-overloaded`` error.  :meth:`begin_drain` flips admission
    off permanently (graceful shutdown); :meth:`wait_idle` blocks until
    every admitted request has been released.  The live depth is pushed
    into *gauge* (an obs :class:`~repro.obs.registry.Gauge`), which is
    also what the reactor runtime's read-pause watermarks key off.
    """

    def __init__(self, max_pending, gauge=None):
        self.max_pending = max_pending
        self.gauge = gauge
        self._lock = threading.Lock()
        self._pending = 0
        self._draining = False
        self._idle = threading.Event()
        self._idle.set()
        self.stats = {"admitted": 0, "overload_rejections": 0,
                      "drain_rejections": 0, "max_queue_depth": 0}

    @property
    def draining(self):
        return self._draining

    @property
    def pending(self):
        with self._lock:
            return self._pending

    def admit(self):
        """Take one slot of the bounded inbound queue (False = shed)."""
        with self._lock:
            if self._draining:
                self.stats["drain_rejections"] += 1
                return False
            if self._pending >= self.max_pending:
                self.stats["overload_rejections"] += 1
                return False
            self._pending += 1
            self._idle.clear()
            self.stats["admitted"] += 1
            if self._pending > self.stats["max_queue_depth"]:
                self.stats["max_queue_depth"] = self._pending
            if self.gauge is not None:
                self.gauge.set(self._pending)
            return True

    def release(self):
        """Give an admitted request's slot back; returns the new depth."""
        with self._lock:
            self._pending -= 1
            if self.gauge is not None:
                self.gauge.set(self._pending)
            if self._pending == 0:
                self._idle.set()
            return self._pending

    def begin_drain(self):
        with self._lock:
            self._draining = True

    def wait_idle(self, timeout=None):
        return self._idle.wait(timeout)

    def snapshot(self):
        with self._lock:
            out = dict(self.stats)
            out["queue_depth"] = self._pending
            out["max_pending"] = self.max_pending
            out["draining"] = self._draining
            return out


class _AgentRequestHandler(socketserver.BaseRequestHandler):
    def setup(self):
        self.server.track_connection(self.request)
        self.reader = FrameReader(self.request)

    def finish(self):
        self.server.untrack_connection(self.request)

    def handle(self):
        while True:
            try:
                payload = self.reader.recv_frame()
            except FrameTooLarge as exc:
                # An oversized length prefix is unrecoverable (the
                # stream cannot be resynchronised past it), but the
                # pooled client deserves a structured refusal rather
                # than a bare reset it cannot attribute.  Reply, then
                # close.
                self.server.count_oversized()
                reply = ErrorMessage(
                    0, code="frame-too-large",
                    detail=str(exc), retryable=False,
                    sender=getattr(self.server.agent, "site_id", None))
                try:
                    send_framed(self.request, reply.encode())
                except OSError:
                    pass
                return
            except NetError:
                return
            if payload is None:
                return
            if self.server.wan_rtt:
                time.sleep(self.server.wan_rtt)
            close_after_reply = False
            message = None
            try:
                message = Message.decode(payload)
            except Exception as exc:  # XmlParseError, MessageError, ...
                # A malformed frame must not kill the connection loop
                # (nor the server thread): tell the peer what happened.
                logger.warning("site %r: undecodable frame: %s",
                               self.server.agent.site_id, exc)
                reply = ErrorMessage(
                    0, code="bad-message",
                    detail=f"{type(exc).__name__}: {exc}",
                    retryable=False, sender=self.server.agent.site_id)
                payload = reply.encode()
            if message is None:
                pass  # undecodable: the error reply is already framed
            elif not self.server.admit():
                # Overload protection / drain: the bounded inbound
                # queue is full (or the server is draining), so shed
                # the request *before* it queues on the agent lock.
                # The retryable structured error composes with the
                # sender's backoff -- it retries later or routes on,
                # instead of piling onto a melting site.
                draining = self.server.draining
                reply = ErrorMessage(
                    message.message_id, code="server-overloaded",
                    detail=("draining for shutdown" if draining
                            else "inbound queue full"),
                    retryable=True, sender=self.server.agent.site_id)
                payload = reply.encode()
                close_after_reply = draining
            else:
                # The socket thread has no ambient span: parent the
                # serve span on the wire trace context (if any) so the
                # remote site's spans join the asking site's trace.
                try:
                    with TRACER.span(
                            "tcp-serve",
                            site=getattr(self.server.agent, "site_id",
                                         None),
                            remote_parent=message.trace_ctx) as serve_span:
                        try:
                            with self.server.agent_lock:
                                if self.server.service_delay:
                                    time.sleep(self.server.service_delay)
                                reply = self.server.agent.handle_message(
                                    message)
                                # Encoding stays under the lock:
                                # serializing the reply touches shared
                                # site state (the serialization-memo
                                # write-back into database elements), so
                                # it must not race with another handler
                                # mutating the fragment.
                                payload = (reply.encode()
                                           if reply is not None else "")
                        except Exception as exc:
                            # A handler crash is a reply, not a dead
                            # socket: the client gets a structured error
                            # to act on instead of a connection reset it
                            # cannot attribute.
                            logger.exception(
                                "site %r: handler failed on %s",
                                self.server.agent.site_id,
                                type(message).__name__)
                            reply = ErrorMessage(
                                message.message_id, code="handler-error",
                                detail=f"{type(exc).__name__}: {exc}",
                                retryable=False,
                                sender=self.server.agent.site_id)
                            attach_context(reply, serve_span)
                            payload = reply.encode()
                finally:
                    self.server.release()
            try:
                send_framed(self.request, payload)
            except OSError:
                # The client hung up while we worked; nothing to tell.
                return
            if close_after_reply:
                # Draining: the rejection is the connection's last
                # frame, so the pooled socket dies and the client
                # re-dials elsewhere (or fails fast) next time.
                return


class TcpSiteServer(socketserver.ThreadingTCPServer):
    """One site's OA served over TCP (threaded, connection-per-client).

    Overload protection: at most ``max_pending`` requests may be
    admitted (decoded and queued on / holding the agent lock) at once.
    Requests beyond that are answered immediately with a retryable
    ``server-overloaded`` :class:`ErrorMessage` -- shedding load at
    admission instead of letting an unbounded thread pile-up grow the
    tail latency without bound.  ``queue_depth`` (an obs
    :class:`~repro.obs.registry.Gauge`) tracks the live queue.

    Graceful drain: :meth:`begin_drain` stops accepting connections
    and flips admission off; in-flight requests finish and are
    answered; :meth:`wait_drained` blocks until the queue is empty and
    then drains the agent's WAL to disk.  :meth:`stop` runs the full
    sequence; ``stop(drain=False)`` is the crash-style teardown the
    kill/restart chaos path uses.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, agent, host="127.0.0.1", port=0, max_pending=64,
                 wan_rtt=0.0, service_delay=0.0):
        super().__init__((host, port), _AgentRequestHandler)
        from repro.obs.registry import Gauge

        self.agent = agent
        #: Emulated per-request service time (seconds), slept *under*
        #: the agent lock.  In the deployed system every site is its
        #: own machine; in-process, all sites share one interpreter, so
        #: CPU-bound handling makes the sites' capacities one pooled
        #: number and a load experiment cannot see per-site saturation.
        #: The lock-held sleep restores the per-machine capacity model
        #: (sleeps release the GIL, so distinct sites genuinely serve
        #: in parallel) -- it is what lets the rebalancing bench show a
        #: hot *site*, not a hot interpreter.
        self.service_delay = service_delay
        #: Emulated wide-area round-trip time per request (seconds).
        #: Everything in this repo runs on localhost, but the paper's
        #: deployment target is wide-area links where each framed
        #: exchange pays tens of milliseconds of propagation.  With
        #: ``wan_rtt`` set, the handler sleeps that long between
        #: reading a request and processing it -- on this runtime the
        #: delay occupies the connection's thread, exactly as a real
        #: WAN occupies the connection (the serial framing protocol
        #: allows one outstanding frame per connection either way).
        self.wan_rtt = wan_rtt
        # The loopback runtime serializes each site with a lock; the
        # TCP runtime does the same, mirroring one-OA-per-site.
        self.agent_lock = threading.Lock()
        self._thread = None
        self.max_pending = max_pending
        site = getattr(agent, "site_id", "site")
        self.queue_depth = Gauge(f"{site}.queue_depth")
        self.gate = AdmissionGate(max_pending, self.queue_depth)
        self._connections = set()
        self._connections_lock = threading.Lock()
        self._oversized_frames = 0

    @property
    def stats(self):
        return self.gate.stats

    @property
    def address(self):
        return self.server_address

    @property
    def draining(self):
        return self.gate.draining

    # -- connection tracking (for crash-style teardown) -----------------
    def track_connection(self, sock):
        with self._connections_lock:
            self._connections.add(sock)

    def untrack_connection(self, sock):
        with self._connections_lock:
            self._connections.discard(sock)

    def _sever_connections(self):
        with self._connections_lock:
            victims = list(self._connections)
            self._connections.clear()
        for sock in victims:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            _close_quietly(sock)

    # -- admission ------------------------------------------------------
    def admit(self):
        """Take one slot of the bounded inbound queue (False = shed)."""
        return self.gate.admit()

    def release(self):
        self.gate.release()

    def count_oversized(self):
        self._oversized_frames += 1

    def server_stats(self):
        """Queue/overload counters for the metrics registry."""
        out = self.gate.snapshot()
        out["oversized_frames"] = self._oversized_frames
        return out

    # -- lifecycle ------------------------------------------------------
    def start(self):
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def begin_drain(self):
        """Stop accepting; shed new requests; let in-flight finish."""
        self.gate.begin_drain()
        self.shutdown()  # stops the accept loop (idempotent)

    def wait_drained(self, timeout=5.0):
        """Block until in-flight requests finished, then flush the WAL.

        Returns ``True`` when the queue reached empty within *timeout*
        (the WAL is flushed either way -- a hung request must not keep
        acknowledged mutations off the disk).
        """
        drained = self.gate.wait_idle(timeout)
        if getattr(self.agent, "durability", None) is not None:
            self.agent.durability.flush()
        return drained

    def stop(self, drain=True, timeout=5.0):
        """Tear the server down; graceful by default, abrupt for chaos.

        With *drain*: stop accepting, finish in-flight requests, flush
        the WAL, then close.  Without: close immediately -- in-flight
        work is abandoned mid-flight, exactly like a process kill.
        """
        if drain:
            self.begin_drain()
            self.wait_drained(timeout)
        else:
            self.shutdown()
            # A real process kill severs *established* connections
            # too, not just the listener: without this, peers' pooled
            # sockets keep talking to this site's handler threads --
            # a zombie of the killed agent that still answers queries.
            self._sever_connections()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def _close_quietly(sock):
    try:
        sock.close()
    except OSError:
        pass


def _socket_is_dead(sock):
    """Whether an *idle* pooled socket has been abandoned by its peer.

    A healthy idle connection has nothing to read.  Readability
    therefore means either EOF (the peer closed or crashed -- the
    half-open case) or stray bytes no request is waiting for (protocol
    garbage); both poison the socket for the next exchange, so it is
    recycled instead of handed out.  The zero-timeout ``select`` makes
    this a single cheap syscall on checkout.
    """
    try:
        readable, _, _ = select.select([sock], [], [], 0)
    except (OSError, ValueError):
        return True
    return bool(readable)


class TcpNetwork:
    """Message delivery over TCP, given a site -> address map.

    Connections are pooled per destination: a request checks an idle
    socket out (or dials a fresh one), runs one framed exchange, and
    checks it back in for the next caller.  Keying the pool by site --
    not by thread -- lets the short-lived fan-out worker threads reuse
    each other's connections instead of paying a TCP handshake per
    round, and bounds the number of sockets kept open
    (``max_idle_per_site`` each).  A pooled socket may have been closed
    by its peer while idle; an exchange that fails on a *reused*
    connection is retried once on a fresh dial before the error
    surfaces.  ``pool_stats`` counts ``connects`` (dials), ``reuses``
    and ``discarded`` (closed instead of pooled).
    """

    def __init__(self, addresses=None, timeout=10.0, count_bytes=True,
                 max_idle_per_site=8):
        self.addresses = dict(addresses or {})
        self.timeout = timeout
        self.max_idle_per_site = max_idle_per_site
        self.traffic = TrafficLog(count_bytes=count_bytes)
        self.interceptors = []
        self._idle = {}
        self._lock = threading.Lock()
        self._closed = False
        self.pool_stats = {"connects": 0, "reuses": 0, "discarded": 0,
                           "stale_evictions": 0, "send_failures": 0}

    def register_address(self, site_id, address):
        self.addresses[site_id] = address

    # -- pool -----------------------------------------------------------
    def _dial(self, site_id):
        try:
            address = self.addresses[site_id]
        except KeyError:
            raise UnknownSite(f"no TCP address for site {site_id!r}") \
                from None
        sock = socket.create_connection(address, timeout=self.timeout)
        with self._lock:
            self.pool_stats["connects"] += 1
        return sock

    def _checkout(self, site_id):
        """An idle pooled socket (reused=True) or a fresh dial.

        Pooled sockets get a zero-cost liveness check first: a peer
        that crashed (or drained) while the connection idled leaves a
        half-open socket that would otherwise only surface as a reset
        mid-request.  Dead sockets are evicted and counted
        (``pool_stats["stale_evictions"]``), never handed out.
        """
        while True:
            with self._lock:
                stack = self._idle.get(site_id)
                sock = stack.pop() if stack else None
            if sock is None:
                return self._dial(site_id), False
            if _socket_is_dead(sock):
                with self._lock:
                    self.pool_stats["stale_evictions"] += 1
                _close_quietly(sock)
                continue
            with self._lock:
                self.pool_stats["reuses"] += 1
            return sock, True

    def _checkin(self, site_id, sock):
        with self._lock:
            if not self._closed:
                stack = self._idle.setdefault(site_id, [])
                if len(stack) < self.max_idle_per_site:
                    stack.append(sock)
                    return
            self.pool_stats["discarded"] += 1
        _close_quietly(sock)

    def _discard(self, sock):
        with self._lock:
            self.pool_stats["discarded"] += 1
        _close_quietly(sock)

    def _exchange(self, dst, encoded, message=None):
        """One framed request/reply on a pooled connection.

        Never returns a socket of unknown state to the pool: any
        failure closes it.  A failure (or an unexpected clean close) on
        a reused connection means the peer dropped it while idle --
        retried once on a fresh dial.
        """
        sock, reused = self._checkout(dst)
        while True:
            try:
                send_framed(sock, encoded)
                payload = recv_framed(sock)
            except (OSError, NetError):
                self._discard(sock)
                if not reused:
                    raise
                sock, reused = self._dial(dst), False
                continue
            if payload is None:
                # Clean close before any reply byte.
                self._discard(sock)
                if reused:
                    sock, reused = self._dial(dst), False
                    continue
                return None
            self._checkin(dst, sock)
            return payload

    # -- transport interface --------------------------------------------
    def request(self, src, dst, message):
        for interceptor in self.interceptors:
            interceptor(src, dst, message)
        self.traffic.record(src, dst, message)
        payload = self._exchange(dst, message.encode(), message)
        if not payload:
            return None
        reply = Message.decode(payload)
        self.traffic.record(dst, src, reply)
        return reply

    def tell(self, src, dst, message):
        """Fire-and-forget: a failed one-way send is counted, not raised.

        Sensor updates and other notifications tolerate loss (the next
        pull re-fetches fresh state), so a dead peer must not blow up
        the sender's update path; ``pool_stats["send_failures"]``
        records how many sends were lost.
        """
        try:
            self.request(src, dst, message)
        except (OSError, NetError):
            with self._lock:
                self.pool_stats["send_failures"] += 1

    def idle_connection_count(self):
        with self._lock:
            return sum(len(stack) for stack in self._idle.values())

    def close(self):
        """Close every pooled socket; later check-ins are discarded."""
        with self._lock:
            self._closed = True
            idle = [sock for stack in self._idle.values() for sock in stack]
            self._idle.clear()
        for sock in idle:
            _close_quietly(sock)


class TcpCluster:
    """A cluster whose sites listen on real localhost sockets.

    Builds the standard :class:`~repro.net.cluster.Cluster`, then hosts
    every agent behind a :class:`TcpSiteServer` and rewires all agents
    (and the client) onto a shared :class:`TcpNetwork`.  Use as a
    context manager to guarantee socket teardown::

        with TcpCluster(document, plan) as tcp:
            results, site, _ = tcp.cluster.query(...)

    ``network_wrapper`` (a callable ``TcpNetwork -> network``) wraps
    the shared client-side transport before the agents are rewired onto
    it -- e.g. ``lambda net: FaultyNetwork(net, seed=7, drop_rate=0.2)``
    for chaos testing over real sockets.  ``max_pending`` bounds each
    server's inbound queue (overload protection); pass a
    ``durability=DurabilityConfig(...)`` cluster kwarg to make the
    sites crash-recoverable via :meth:`kill_site`/:meth:`restart_site`.

    ``runtime`` selects how each site serves its sockets:
    ``"threaded"`` (the default) is the classic connection-per-thread
    :class:`TcpSiteServer`; ``"reactor"`` hosts every site on a
    :class:`~repro.net.aioruntime.AsyncSiteServer` -- one event loop
    per site driving all of its sockets.  ``pipelining`` controls the
    client side: ``True`` multiplexes many in-flight frames per pooled
    connection (:class:`~repro.net.aioruntime.PipelinedTcpNetwork`),
    ``False`` keeps the strictly serial exchange; the default follows
    the runtime (pipelined with the reactor, serial with threads).
    The wire format is identical in all four combinations.
    """

    def __init__(self, global_document, plan, network_wrapper=None,
                 max_pending=64, runtime="threaded", pipelining=None,
                 wan_rtt=0.0, service_delay=0.0, **cluster_kwargs):
        from repro.net.cluster import Cluster

        if runtime not in ("threaded", "reactor"):
            raise ValueError(f"unknown runtime {runtime!r}")
        self.runtime = runtime
        if pipelining is None:
            pipelining = runtime == "reactor"
        self.pipelining = pipelining
        if runtime == "reactor":
            from repro.net.aioruntime import AsyncSiteServer
            self._server_cls = AsyncSiteServer
        else:
            self._server_cls = TcpSiteServer
        if pipelining:
            from repro.net.aioruntime import PipelinedTcpNetwork
            self.tcp_network = PipelinedTcpNetwork()
        else:
            self.tcp_network = TcpNetwork()

        self.cluster = Cluster(global_document, plan, **cluster_kwargs)
        self.max_pending = max_pending
        self.wan_rtt = wan_rtt
        self.service_delay = service_delay
        self.network = (self.tcp_network if network_wrapper is None
                        else network_wrapper(self.tcp_network))
        self.servers = {}
        self._parked_addresses = {}
        for site, agent in self.cluster.agents.items():
            server = self._server_cls(agent, max_pending=max_pending,
                                      wan_rtt=wan_rtt,
                                      service_delay=service_delay).start()
            self.servers[site] = server
            self.network.register_address(site, server.address)
        for agent in self.cluster.agents.values():
            agent.network = self.network
        self.cluster.network = self.network
        if self.cluster.balancer is not None:
            # Server pressure (admission sheds, queue depth) joins the
            # served-query counters as an overload signal.
            self.cluster.balancer.attach_runtime(self)

    @property
    def balancer(self):
        return self.cluster.balancer

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- site lifecycle (crash / recovery) ------------------------------
    def kill_site(self, site):
        """Kill one site's server *and* agent state (process death).

        The listening socket closes mid-flight (no drain, no final
        checkpoint); peers see resets/refused connections until
        :meth:`restart_site` brings the site back from WAL+checkpoint.
        """
        server = self.servers.pop(site)
        self._parked_addresses[site] = server.address
        server.stop(drain=False)
        self.cluster.kill_site(site)

    def restart_site(self, site):
        """Recover the site from durable state on its old address."""
        host, port = self._parked_addresses.pop(site)
        agent = self.cluster.restart_site(site)
        agent.network = self.network
        server = self._server_cls(agent, host=host, port=port,
                                  max_pending=self.max_pending,
                                  wan_rtt=self.wan_rtt,
                                  service_delay=self.service_delay).start()
        self.servers[site] = server
        self.network.register_address(site, server.address)
        return agent

    def bind_lifecycle(self, faulty):
        """Hook a :class:`~repro.net.faults.FaultyNetwork`'s agent-level
        kill/restart injection to real server+agent teardown."""
        faulty.bind_lifecycle(kill=self.kill_site,
                              restart=self.restart_site)
        return faulty

    def metrics(self):
        """Cluster metrics plus per-server queue/overload counters."""
        out = self.cluster.metrics()
        out["servers"] = {site: server.server_stats()
                         for site, server in sorted(self.servers.items())}
        return out

    def close(self, drain=True):
        """Tear the deployment down, gracefully by default.

        Graceful: every server stops accepting and sheds new requests,
        in-flight requests complete, WALs drain to disk, then sockets
        close and each agent takes its final checkpoint.  With
        ``drain=False`` everything stops abruptly (crash-style; the
        durability directories keep whatever was already journalled).
        """
        if drain:
            for server in self.servers.values():
                server.begin_drain()
            for server in self.servers.values():
                server.wait_drained()
        self.network.close()
        for server in self.servers.values():
            server.stop(drain=False)
        self.cluster.shutdown(final_checkpoint=drain, close_network=False)
