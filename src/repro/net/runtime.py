"""A live concurrent runtime: many client threads against one cluster.

The discrete-event simulator (:mod:`repro.sim`) regenerates the paper's
cluster numbers from a cost model; this module complements it with a
*real* concurrent execution of the same OA/SA/DNS code path, used by
the examples and by wall-clock sanity benchmarks.

Sites are serialized with per-site locks, mirroring the one-process-
per-site deployment of the paper's prototype: concurrent queries at a
single site queue behind each other, while queries at different sites
genuinely run in parallel (subquery chains descend the hierarchy, so
the lock order is acyclic and deadlock-free).
"""

import threading
import time

from repro.net.transport import LoopbackNetwork


class LockingNetwork(LoopbackNetwork):
    """Loopback delivery with one lock per destination site.

    Per-site serialization now lives in :class:`LoopbackNetwork` itself
    (parallel subquery fan-out made it a correctness requirement, not a
    concurrency-benchmark nicety), so this class no longer layers a
    second set of locks on top -- doing so leaked one lock per site per
    cluster start and deadlocked reentrant deliveries.  The name is
    kept as the explicit opt-in used by the concurrent-client helpers;
    ``close()`` releases the per-site locks.
    """


class ClientWorkloadResult:
    """Outcome of a concurrent client run."""

    def __init__(self, completed, duration, latencies):
        self.completed = completed
        self.duration = duration
        self.latencies = latencies

    @property
    def throughput(self):
        """Completed queries per second of wall-clock time."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def mean_latency(self):
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile_latency(self, fraction):
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def __repr__(self):
        return (
            f"ClientWorkloadResult(completed={self.completed}, "
            f"throughput={self.throughput:.1f}/s, "
            f"mean_latency={self.mean_latency * 1000:.2f}ms)"
        )


def run_concurrent_clients(cluster, query_source, n_clients=4,
                           queries_per_client=25):
    """Run *n_clients* threads, each posing queries drawn from
    *query_source* (a zero-argument callable returning a query string).

    Returns a :class:`ClientWorkloadResult` with wall-clock throughput
    and per-query latencies.  The cluster must have been built with a
    :class:`LockingNetwork` (see :func:`make_concurrent_cluster`) to be
    exercised concurrently.
    """
    latencies = []
    latencies_lock = threading.Lock()
    errors = []

    def client():
        local = []
        try:
            for _ in range(queries_per_client):
                query = query_source()
                started = time.perf_counter()
                cluster.query(query)
                local.append(time.perf_counter() - started)
        except Exception as exc:  # surfaced after joining
            errors.append(exc)
        with latencies_lock:
            latencies.extend(local)

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    if errors:
        raise errors[0]
    return ClientWorkloadResult(len(latencies), duration, latencies)


def make_concurrent_cluster(global_document, plan, **kwargs):
    """Build a :class:`~repro.net.cluster.Cluster` on a locking network."""
    from repro.net.cluster import Cluster

    cluster = Cluster(global_document, plan, **kwargs)
    locking = LockingNetwork(count_bytes=cluster.network.traffic.count_bytes)
    for site, agent in cluster.agents.items():
        agent.network = locking
        locking.register(site, agent)
    for agent in cluster.sensing_agents:
        agent.network = locking
    cluster.network = locking
    return cluster
