"""Async runtime smoke check: a 3-site reactor cluster, end to end.

``python -m repro.net.aiosmoke`` builds the same three-level ownership
chain as :mod:`repro.obs.smoke` (``top`` owns the region, ``mid`` the
group, ``leaf`` the sensor), serves every site from an
:class:`~repro.net.aioruntime.AsyncSiteServer` reactor with the
pipelined client, and checks that

* a user query through the full wire path returns the right answer,
* the same answer comes back with pipelining disabled (the serial
  compatibility fallback against the same reactor servers),
* a burst of concurrent pipelined queries all succeed and actually
  shared connections (``pool_stats["pipelined"]`` grew, the socket
  count stayed at one per hop), and
* the cluster drains cleanly (reactor event loops stop, admission
  gates empty).

Exit status 0 when everything holds, 1 otherwise -- CI runs this as
the async-smoke job.
"""

import argparse
import sys
from concurrent.futures import ThreadPoolExecutor


def _chain_document():
    from repro.xmlkit import Element

    root = Element("region", attrib={"id": "R"})
    group = Element("group", attrib={"id": "G"})
    sensor = Element("sensor", attrib={"id": "S"})
    sensor.append(Element("value", text="42"))
    group.append(sensor)
    root.append(group)
    return root


def _chain_plan():
    from repro.core import PartitionPlan

    return PartitionPlan({
        "top": [(("region", "R"),)],
        "mid": [(("region", "R"), ("group", "G"))],
        "leaf": [(("region", "R"), ("group", "G"), ("sensor", "S"))],
    })


QUERY = "/region[@id='R']/group[@id='G']/sensor[@id='S']/value"


def run_smoke(burst=24):
    """Run the reactor-cluster checks; returns a list of problems."""
    from repro.net.tcpruntime import TcpCluster

    problems = []

    with TcpCluster(_chain_document(), _chain_plan(), service="smoke",
                    runtime="reactor") as tcp:
        results, _site = tcp.cluster.query_via_messages(QUERY)
        if len(results) != 1 or (results[0].text or "").strip() != "42":
            problems.append(f"pipelined query answered {results!r}, "
                            f"expected one <value>42</value>")

        def ask(_i):
            answers, _ = tcp.cluster.query_via_messages(QUERY)
            return len(answers) == 1 and (answers[0].text or "") == "42"

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(ask, range(burst)))
        if not all(outcomes):
            problems.append(
                f"{outcomes.count(False)}/{burst} concurrent pipelined "
                f"queries failed")
        stats = tcp.network.pool_stats
        if stats.get("pipelined", 0) < burst:
            problems.append(
                f"expected >= {burst} pipelined exchanges, "
                f"pool_stats says {stats.get('pipelined')}")
        if stats.get("serial_fallbacks", 0):
            problems.append("pipelined client fell back to serial "
                            "against the reactor")
        for site, server in tcp.servers.items():
            depth = server.server_stats()["queue_depth"]
            if depth:
                problems.append(f"site {site!r} still has {depth} "
                                f"admitted requests after the burst")
        print(f"reactor cluster: {burst} concurrent pipelined queries ok, "
              f"pool stats {stats}")

    with TcpCluster(_chain_document(), _chain_plan(), service="smoke",
                    runtime="reactor", pipelining=False) as tcp:
        results, _site = tcp.cluster.query_via_messages(QUERY)
        if len(results) != 1 or (results[0].text or "").strip() != "42":
            problems.append("serial client against the reactor answered "
                            f"{results!r}, expected one <value>42</value>")
        print("serial fallback against reactor servers: ok")

    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.aiosmoke", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--burst", type=int, default=24,
                        help="concurrent pipelined queries to fire")
    args = parser.parse_args(argv)

    problems = run_smoke(burst=args.burst)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
