"""Sensing agents (SAs): sensor proxies feeding updates to the OAs.

An SA stands in for a webcam-plus-PC sensor proxy: it monitors a set
of parking spaces, turns raw readings into availability updates, and
sends each update to the OA that owns the space (found through DNS,
like everything else).  For scale experiments the paper itself runs
"fake SAs that produce random data updates"; :class:`RandomSensorModel`
reproduces that.
"""

import random

from repro.net.messages import UpdateMessage


class RandomSensorModel:
    """Random availability flips, the paper's fake-SA update source.

    Each reading flips a space's availability with probability
    ``flip_probability``, otherwise re-reports the current state.
    """

    def __init__(self, flip_probability=0.3, seed=None):
        self.flip_probability = flip_probability
        self.rng = random.Random(seed)
        self._state = {}

    def reading(self, space_path):
        current = self._state.get(space_path, True)
        if self.rng.random() < self.flip_probability:
            current = not current
        self._state[space_path] = current
        return {"available": "yes" if current else "no"}


class SensingAgent:
    """One sensor proxy covering a set of parking spaces."""

    def __init__(self, agent_id, space_paths, network, resolver, model=None,
                 clock=None):
        self.agent_id = agent_id
        self.space_paths = [tuple(tuple(e) for e in p) for p in space_paths]
        self.network = network
        self.resolver = resolver
        self.model = model or RandomSensorModel()
        self.clock = clock or (lambda: 0.0)
        self.stats = {"updates_sent": 0}

    def send_update(self, space_path, values=None, attributes=None):
        """Send one update for *space_path* to its owner OA."""
        if values is None:
            values = self.model.reading(space_path)
        name = self.resolver.server.name_for(space_path)
        owner, _hops = self.resolver.resolve(name)
        message = UpdateMessage(space_path, attributes=attributes,
                                values=values, sender=self.agent_id)
        reply = self.network.request(self.agent_id, owner, message)
        self.stats["updates_sent"] += 1
        return reply

    def tick(self):
        """One sensing round: report every covered space once."""
        for path in self.space_paths:
            self.send_update(path)

    def __repr__(self):
        return f"SensingAgent({self.agent_id!r}, spaces={len(self.space_paths)})"
