"""Cluster assembly: wire a partitioned deployment together.

A :class:`Cluster` takes the global document and a
:class:`~repro.core.partition.PartitionPlan` and produces the whole
running system: per-site databases, organizing agents on a loopback
network, the authoritative DNS server with one record per IDable node,
and a client-side resolver for self-starting distributed queries.

This is the object the examples and integration tests drive; the
discrete-event simulator wraps the same pieces with a cost model.
"""

import copy

from repro.core.errors import QueryRoutingError
from repro.core.partition import PartitionPlan
from repro.core.schema import HierarchySchema
from repro.net.dns import DnsResolver, DnsServer
from repro.net.messages import QueryMessage
from repro.net.oa import OAConfig, OrganizingAgent
from repro.net.sa import SensingAgent
from repro.net.transport import LoopbackNetwork
from repro.xpath import parser as xpath_parser
from repro.xpath.analysis import extract_id_path
from repro.xpath.ast import FunctionCall, LocationPath


class Cluster:
    """A complete in-process deployment of the sensor database."""

    def __init__(self, global_document, plan, service="parking",
                 zone="intel-iris.net", oa_config=None, clock=None,
                 count_bytes=False, schema=None, network=None,
                 durability=None, replication=None, aggregation=None,
                 rebalance=None):
        if not isinstance(plan, PartitionPlan):
            plan = PartitionPlan(plan)
        from repro.xmlkit.nodes import Document as _Document

        if isinstance(global_document, _Document):
            global_document = global_document.root
        self.global_document = global_document
        self.plan = plan
        self.clock = clock or (lambda: 0.0)
        self.oa_config = oa_config or OAConfig()
        self.schema = schema or HierarchySchema.from_document(global_document)
        # An injected network (e.g. a FaultyNetwork-wrapped loopback)
        # must still expose register()/request(); anything extra is the
        # wrapper's business.
        self.network = network or LoopbackNetwork(count_bytes=count_bytes)
        self.dns = DnsServer(service=service, zone=zone)
        self.owner_map = plan.owner_map(global_document)
        for path, site in self.owner_map.items():
            self.dns.register_id_path(path, site)

        # Durability: a DurabilityConfig turns on per-site WAL +
        # checkpoints (None, or enabled=False, leaves agents exactly as
        # before the subsystem existed).
        self.durability_config = (
            durability if durability is not None and durability.enabled
            else None
        )

        # Replication: a ReplicationConfig turns on k-replica fragment
        # ownership.  It may arrive either as a cluster kwarg (mirrored
        # onto a copy of the OA config so a shared config object is
        # never mutated) or pre-set on the OA config directly; disabled
        # either way means no replication traffic at all.
        if replication is not None:
            self.oa_config = copy.copy(self.oa_config)
            self.oa_config.replication = replication
        configured = getattr(self.oa_config, "replication", None)
        self.replication_config = (
            configured if configured is not None and configured.enabled
            else None
        )

        # Aggregation: an AggregationConfig turns on hierarchical
        # aggregate answering + derived sensors, mirrored onto the OA
        # config exactly like replication (copy guard included).
        if aggregation is not None:
            self.oa_config = copy.copy(self.oa_config)
            self.oa_config.aggregation = aggregation
        configured = getattr(self.oa_config, "aggregation", None)
        self.aggregation_config = (
            configured if configured is not None and configured.enabled
            else None
        )

        # Rebalancing: a RebalanceConfig turns on the adaptive load
        # balancer (hot-spot detection + live fragment migration),
        # mirrored onto the OA config like the subsystems above.
        if rebalance is not None:
            self.oa_config = copy.copy(self.oa_config)
            self.oa_config.rebalance = rebalance
        configured = getattr(self.oa_config, "rebalance", None)
        self.rebalance_config = (
            configured if configured is not None and configured.enabled
            else None
        )

        databases = plan.build_databases(global_document,
                                         default_clock=self.clock)
        self.agents = {}
        for site, database in databases.items():
            self.agents[site] = self._build_agent(site, database)

        self.client_resolver = DnsResolver(self.dns, clock=self.clock)
        self.sensing_agents = []
        self.stats = {"client_queries": 0, "lca_cache_hits": 0,
                      "site_kills": 0, "site_restarts": 0,
                      "site_rehydrations": 0, "rehydrated_bytes": 0}
        self._wire_replication()

        #: The adaptive load balancer, or ``None`` while the subsystem
        #: is off.  The balancer is passive until :meth:`LoadBalancer
        #: .tick` (or ``.start()``) is called, and it only ever acts
        #: through the agents' existing protocol, so merely enabling
        #: it adds no wire traffic on an unskewed workload.
        self.balancer = None
        if self.rebalance_config is not None:
            from repro.rebalance import LoadBalancer
            self.balancer = LoadBalancer(self, self.rebalance_config)
            # DNS invalidation fan-out: when a migration re-points a
            # record, drop it from every resolver cache immediately so
            # the next query routes to the new owner instead of
            # waiting out a TTL on the old one.
            self.dns.subscribe(self._invalidate_resolver_caches)

    def _build_agent(self, site, database, prefer_database=False):
        """One OA, durably journalled when durability is configured.

        When the site's durability directory already holds state (a
        restart -- of the single site or of the whole deployment), the
        freshly partitioned *database* is discarded and the agent
        recovers from checkpoint + WAL instead -- unless
        *prefer_database* says the given database is fresher than the
        durable state (peer rehydration; the caller re-checkpoints).
        """
        from repro.durability import DurabilityManager

        manager = None
        if self.durability_config is not None:
            manager = DurabilityManager(self.durability_config, site,
                                        clock=self.clock)
            if manager.has_state() and not prefer_database:
                database = None
        resolver = DnsResolver(self.dns, clock=self.clock)
        agent = OrganizingAgent(
            site, database, self.network, resolver,
            schema=self.schema,
            config=self.oa_config,
            clock=self.clock,
            durability=manager,
        )
        if hasattr(self.network, "register"):
            # Loopback-style delivery; the TCP runtime registers
            # addresses instead (TcpCluster handles that).
            self.network.register(site, agent)
        return agent

    def _invalidate_resolver_caches(self, name, site):
        """DNS fan-out target: purge *name* from every resolver cache."""
        self.client_resolver.invalidate(name)
        for agent in self.agents.values():
            agent.resolver.invalidate(name)
        for sensing_agent in self.sensing_agents:
            resolver = getattr(sensing_agent, "resolver", None)
            if resolver is not None:
                resolver.invalidate(name)

    def _wire_replication(self):
        """Pin the site ring on every agent and seed the replica sets.

        The ring comes from the static partition plan, so every site
        (and every future asker) agrees on who replicates whom without
        a membership protocol.  The bootstrap push runs over whatever
        network the cluster currently has -- for a TcpCluster that is
        the in-process loopback, before any socket exists.
        """
        if self.replication_config is None:
            return
        sites = self.plan.sites
        for agent in self.agents.values():
            agent.replication.set_topology(sites)
        for agent in self.agents.values():
            agent.replication.replicate_owned()

    def _rehydrate_from_peers(self, site):
        """Rebuild a dead site's fragment from its replicas, or ``None``.

        Asks each of the site's ring-successor peers for their full
        replica copy and merges the answers.  Succeeds only when the
        merged copy covers **every** node the partition plan assigns to
        the site (anything less would restart the owner with silent
        holes); on success the owned paths are promoted and the
        database is ready to serve.
        """
        from repro.core.database import SensorDatabase
        from repro.core.status import get_status
        from repro.net.errors import NetError
        from repro.net.messages import RehydrateAnswer, RehydrateRequest
        from repro.replication import replica_peers

        owned = sorted(
            (path for path, owner in self.owner_map.items()
             if owner == site),
            key=len,
        )
        if not owned:
            return None
        database = None
        received = 0
        for peer in replica_peers(site, self.plan.sites,
                                  self.replication_config.k):
            if peer not in self.agents:
                continue
            message = RehydrateRequest(site, sender=site)
            try:
                reply = self.network.request(site, peer, message)
            except (OSError, NetError):
                continue
            if not isinstance(reply, RehydrateAnswer) or \
                    reply.fragment is None:
                continue
            received += reply.encoded_size()
            if database is None:
                database = SensorDatabase(reply.fragment.copy(),
                                          clock=self.clock, site_id=site)
            else:
                database.store_fragment(reply.fragment)
        if database is None:
            return None
        for path in owned:
            element = database.find(path)
            if element is None or \
                    not get_status(element).has_local_information:
                # The replicas do not cover the whole fragment: fall
                # back to WAL replay rather than restart with holes.
                return None
        for path in owned:
            database.mark_owned(path)
        self.stats["site_rehydrations"] += 1
        self.stats["rehydrated_bytes"] += received
        return database

    # ------------------------------------------------------------------
    @property
    def sites(self):
        return sorted(self.agents)

    def agent(self, site):
        return self.agents[site]

    def database(self, site):
        return self.agents[site].database

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def route_query(self, query):
        """The LCA site a user query should be sent to (Section 3.4).

        The DNS-style name is extracted from the query string itself --
        no global information, no schema -- then resolved.
        """
        ast = xpath_parser.parse(query) if isinstance(query, str) else query
        if isinstance(ast, FunctionCall) and ast.arguments and \
                isinstance(ast.arguments[0], LocationPath):
            ast = ast.arguments[0]
        id_path = extract_id_path(ast)
        while id_path:
            name = self.dns.name_for(id_path)
            try:
                site, hops = self.client_resolver.resolve(name)
            except Exception:
                id_path = id_path[:-1]
                continue
            if hops == 0:
                self.stats["lca_cache_hits"] += 1
            return site, tuple(id_path)
        # No usable prefix: fall back to the root's owner.
        root_path = next(
            (path for path in self.owner_map if len(path) == 1), None
        )
        if root_path is None:
            raise QueryRoutingError("cluster has no owned nodes")
        site, _hops = self.client_resolver.resolve(
            self.dns.name_for(root_path)
        )
        return site, root_path

    def query(self, query, now=None, at_site=None):
        """Pose a user query; returns ``(results, site, outcome)``.

        With ``at_site`` the query is forced to a specific site (used
        by the micro-benchmarks that artificially route queries higher
        up the hierarchy); otherwise it self-starts at its LCA.
        """
        if at_site is None:
            at_site, _path = self.route_query(query)
        self.stats["client_queries"] += 1
        agent = self.agents[at_site]
        results, outcome = agent.answer_user_query(query, now=now)
        return results, at_site, outcome

    def query_via_messages(self, query, now=None):
        """Pose a user query through the message layer (full wire path)."""
        site, _path = self.route_query(query)
        message = QueryMessage(query, now=now, user=True, sender="client")
        reply = self.network.request("client", site, message)
        return reply.results, site

    def scalar(self, query, now=None, at_site=None, max_age=None,
               precision=None):
        """Pose a scalar (boolean/count/sum/...) query.

        *max_age*/*precision* enable the acceptable-precision extension
        (Section 4): a fresh-enough cached aggregate short-circuits the
        distributed gather.
        """
        if at_site is None:
            at_site, _path = self.route_query(query)
        return self.agents[at_site].answer_scalar(
            query, now=now, max_age=max_age, precision=precision)

    def explain(self, query, analyze=False, now=None):
        """EXPLAIN *query* as the cluster would answer it.

        Routes the query to its LCA site first (the client-side step
        :meth:`query` performs), then builds that site's
        :class:`~repro.obs.explain.ExplainReport` with the routed site
        recorded on the report.
        """
        from repro.obs.explain import build_explain

        site, _path = self.route_query(query)
        return build_explain(self.agents[site], query, analyze=analyze,
                             now=now, routed_site=site)

    def metrics(self):
        """Cluster-wide unified metrics snapshot (one nested dict)."""
        from repro.obs.registry import cluster_metrics

        return cluster_metrics(self)

    def prewarm(self, log, now=None, limit=None):
        """Warm every site's caches by replaying a captured query log.

        *log* is a :class:`~repro.core.semcache.QueryLog` (or iterable
        of query strings); each entry routes to its LCA site and runs
        through that site's gather driver as live traffic would.
        Returns the replay report dict.
        """
        from repro.core.semcache import prewarm

        return prewarm(self, log, now=now, limit=limit)

    # ------------------------------------------------------------------
    # Sensing agents
    # ------------------------------------------------------------------
    def add_sensing_agent(self, agent_id, space_paths, model=None):
        resolver = DnsResolver(self.dns, clock=self.clock)
        agent = SensingAgent(agent_id, space_paths, self.network, resolver,
                             model=model, clock=self.clock)
        self.sensing_agents.append(agent)
        return agent

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def delegate(self, id_path, new_owner):
        """Migrate ownership of *id_path* to *new_owner* (Section 4)."""
        id_path = tuple(tuple(entry) for entry in id_path)
        current = self.owner_map.get(id_path)
        if current is None:
            raise QueryRoutingError(f"unknown node {id_path}")
        moved = self.agents[current].delegate(id_path, new_owner, self.dns)
        for path in moved:
            self.owner_map[path] = new_owner
        return moved

    def subscribe(self, query, callback, fire_immediately=True):
        """Register a continuous query at its LCA's owner (Section 7).

        Returns ``(site, subscription_id)`` for use with
        :meth:`unsubscribe`.
        """
        site, _path = self.route_query(query)
        subscription_id = self.agents[site].continuous.subscribe(
            query, callback, fire_immediately=fire_immediately)
        return site, subscription_id

    def unsubscribe(self, site, subscription_id):
        self.agents[site].continuous.unsubscribe(subscription_id)

    def add_node(self, parent_path, tag, identifier, attributes=None,
                 values=None):
        """Schema evolution: create an IDable node under its parent's
        owner and register it in DNS."""
        parent_path = tuple(tuple(entry) for entry in parent_path)
        owner = self.owner_map.get(parent_path)
        if owner is None:
            raise QueryRoutingError(f"unknown parent {parent_path}")
        element = self.agents[owner].add_node(
            parent_path, tag, identifier, attributes=attributes,
            values=values, dns_server=self.dns)
        new_path = parent_path + ((tag, identifier),)
        self.owner_map[new_path] = owner
        return element

    def register_derived_sensor(self, parent_path, identifier, formula,
                                tag="derived", attributes=None):
        """Register a formula-defined virtual sensor (needs aggregation).

        Creates an IDable ``<derived>`` node under *parent_path* via the
        ordinary schema-evolution path (DNS entry included), then
        registers the formula with the owner's aggregation manager,
        subscribing each dependency region through
        :meth:`subscribe`/:mod:`repro.net.continuous` so the sensor
        re-evaluates when its inputs change.  Returns the
        :class:`~repro.agg.derived.DerivedSensor`.
        """
        if self.aggregation_config is None:
            raise QueryRoutingError(
                "derived sensors need Cluster(aggregation=AggregationConfig())")
        parent_path = tuple(tuple(entry) for entry in parent_path)
        owner = self.owner_map.get(parent_path)
        if owner is None:
            raise QueryRoutingError(f"unknown parent {parent_path}")
        merged = {"formula": formula}
        if attributes:
            merged.update(attributes)
        self.add_node(parent_path, tag, identifier,
                      attributes=merged, values={"value": "NaN"})
        node_path = parent_path + ((tag, identifier),)
        return self.agents[owner].aggregation.register_derived(
            identifier, node_path, formula,
            subscribe=lambda query, callback: self.subscribe(
                query, callback, fire_immediately=False),
        )

    def remove_node(self, path):
        """Schema evolution: delete an IDable node via its parent's owner."""
        path = tuple(tuple(entry) for entry in path)
        parent_owner = self.owner_map.get(path[:-1])
        if parent_owner is None:
            raise QueryRoutingError(f"unknown parent of {path}")
        removed = self.agents[parent_owner].remove_node(
            path, dns_server=self.dns)
        for removed_path in removed:
            self.owner_map.pop(tuple(tuple(e) for e in removed_path), None)
        return removed

    # ------------------------------------------------------------------
    # Site lifecycle (crash / recovery; graceful teardown)
    # ------------------------------------------------------------------
    def kill_site(self, site):
        """Simulate the OA process at *site* dying abruptly.

        The agent object -- its fragment, cache and subscriptions -- is
        discarded; nothing is flushed or checkpointed beyond what the
        durability layer already put on disk (exactly a SIGKILL's
        view).  DNS keeps routing to the site; peers see connection
        failures until :meth:`restart_site`.
        """
        agent = self.agents.pop(site, None)
        if agent is None:
            raise QueryRoutingError(f"unknown site {site!r}")
        if hasattr(self.network, "unregister"):
            self.network.unregister(site)
        if agent.durability is not None:
            agent.durability.abort()
        self.stats["site_kills"] += 1
        return agent

    def restart_site(self, site):
        """Bring a killed site back: peer replicas first, then WAL.

        With replication enabled the restarting owner asks its ring
        peers for their copies and, when those cover the whole owned
        fragment, restarts from them -- typically fresher than the last
        checkpoint and available even without durability.  Otherwise it
        falls back to WAL + checkpoint recovery (PR 5); with neither,
        the fragment died with the process and only a full redeploy can
        recreate it.  Returns the new agent.
        """
        if site in self.agents:
            raise QueryRoutingError(f"site {site!r} is already running")
        database = None
        if self.replication_config is not None:
            database = self._rehydrate_from_peers(site)
        if database is None and self.durability_config is None:
            raise QueryRoutingError(
                f"cannot restart {site!r}: cluster has no durability "
                "(the fragment died with the agent)")
        agent = self._build_agent(site, database,
                                  prefer_database=database is not None)
        self.agents[site] = agent
        self.stats["site_restarts"] += 1
        if database is not None and agent.durability is not None:
            # The rehydrated copy supersedes whatever checkpoint + WAL
            # survived the crash; snapshot it so a second crash does
            # not replay a stale journal over the fresher state.
            agent.durability.checkpoint()
        if agent.replication is not None:
            agent.replication.set_topology(self.plan.sites)
            agent.replication.replicate_owned()
        return agent

    def bind_lifecycle(self, faulty):
        """Hook a :class:`~repro.net.faults.FaultyNetwork`'s agent-level
        kill/restart injection to this cluster's site lifecycle."""
        faulty.bind_lifecycle(kill=self.kill_site, restart=self.restart_site)
        return faulty

    def shutdown(self, final_checkpoint=True, close_network=True):
        """Graceful teardown: drain every site's WAL, snapshot, close.

        The loopback runtime has no accept loop to stop, so the drain
        is the durability flush; the TCP runtime layers its own
        stop-accepting/finish-in-flight phase on top (see
        :meth:`~repro.net.tcpruntime.TcpCluster.close`).
        """
        if self.balancer is not None:
            self.balancer.stop()
        for agent in self.agents.values():
            agent.shutdown(final_checkpoint=final_checkpoint)
        if close_network and hasattr(self.network, "close"):
            self.network.close()

    def validate(self, structural_only=False):
        """Run invariant checks across every site.

        With ``structural_only`` the site fragments are checked against
        the invariants alone (I1/I2, status consistency) without
        comparing content to the bootstrap document -- the right mode
        once sensor updates have changed values.
        """
        from repro.core.invariants import (
            ownership_violations,
            structural_violations,
            validate_deployment,
        )
        from repro.xmlkit.nodes import Document

        databases = {site: a.database for site, a in self.agents.items()}
        if structural_only:
            problems = []
            for site, db in databases.items():
                problems.extend(
                    f"[{site}] {p}" for p in structural_violations(db))
            problems.extend(ownership_violations(databases, self.owner_map))
            return problems
        reference = self.global_document
        if isinstance(reference, Document):
            reference = reference.root
        return validate_deployment(databases, reference, self.owner_map)

    def __repr__(self):
        return f"Cluster(sites={self.sites})"
