"""The XML node model used throughout the reproduction.

The model is deliberately small and data-centric, matching the paper's
use of XML: elements with string attributes, element children and
character data.  There are no namespaces, processing instructions or
mixed-content subtleties -- sensor documents are trees of elements whose
leaves carry values (e.g. ``<available>yes</available>``).

Documents are treated as *unordered*: sibling order carries no meaning
(Section 3.1 of the paper).  The in-memory representation necessarily
keeps children in a list, but all comparison and caching logic in the
rest of the system is order-insensitive.
"""

import itertools

from repro.xmlkit.errors import XmlStructureError

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-.")

#: Global monotone clock for subtree version stamps.  Every mutation of
#: an element (attributes, text, children) stamps the element and all
#: its ancestors with a fresh reading, so ``subtree_version`` changes
#: iff anything inside the subtree changed.  Consumers (the id-path
#: index in :mod:`repro.core.database`, the serialization memo in
#: :mod:`repro.xmlkit.serializer`, the per-element child maps below)
#: compare stamps instead of hashing content.
_VERSION_CLOCK = itertools.count(1)

_ABSENT = object()


def is_valid_name(name):
    """Return ``True`` if *name* is a legal element/attribute name.

    We accept the common subset of XML names: a letter or underscore
    followed by letters, digits, hyphens, dots and underscores.
    """
    if not name:
        return False
    if name[0] not in _NAME_START:
        return False
    return all(ch in _NAME_CHARS for ch in name[1:])


class Text:
    """A character-data node.

    ``Text`` nodes appear as children of :class:`Element` and carry the
    element's value (e.g. the ``yes`` in ``<available>yes</available>``).
    """

    __slots__ = ("value", "parent")

    def __init__(self, value):
        self.value = str(value)
        self.parent = None

    def copy(self):
        """Return a detached copy of this text node."""
        return Text(self.value)

    def __repr__(self):
        preview = self.value if len(self.value) <= 30 else self.value[:27] + "..."
        return f"Text({preview!r})"

    def __eq__(self, other):
        return isinstance(other, Text) and self.value == other.value

    def __hash__(self):
        return hash(("Text", self.value))


class Element:
    """An XML element: a tag, a dict of attributes and child nodes.

    Children are :class:`Element` or :class:`Text` instances.  Parent
    pointers are maintained automatically by the mutation methods
    (:meth:`append`, :meth:`remove`, ...), which is what allows the
    XPath engine to support the ``parent`` and ``ancestor`` axes.
    """

    __slots__ = ("tag", "attrib", "children", "parent",
                 "_version", "_ser_cache", "_kid_maps", "_ser_origin")

    def __init__(self, tag, attrib=None, children=(), text=None):
        if not is_valid_name(tag):
            raise XmlStructureError(f"invalid element name: {tag!r}")
        self.tag = tag
        self.attrib = dict(attrib) if attrib else {}
        for name in self.attrib:
            if not is_valid_name(name):
                raise XmlStructureError(f"invalid attribute name: {name!r}")
        self.children = []
        self.parent = None
        self._version = 0
        self._ser_cache = None
        self._kid_maps = None
        self._ser_origin = None
        for child in children:
            self.append(child)
        if text is not None:
            self.append(Text(text))

    # ------------------------------------------------------------------
    # Version stamps
    # ------------------------------------------------------------------
    @property
    def subtree_version(self):
        """A stamp that changes whenever anything in this subtree changes.

        Two readings being equal guarantees no mutation happened in
        between (stamps are never reused); the converse does not hold.
        """
        return self._version

    def _touch(self):
        stamp = next(_VERSION_CLOCK)
        node = self
        while node is not None:
            node._version = stamp
            node = node.parent

    # ------------------------------------------------------------------
    # Attribute access
    # ------------------------------------------------------------------
    def get(self, name, default=None):
        """Return attribute *name*, or *default* if absent."""
        return self.attrib.get(name, default)

    def set(self, name, value):
        """Set attribute *name* to the string form of *value*."""
        if not is_valid_name(name):
            raise XmlStructureError(f"invalid attribute name: {name!r}")
        value = str(value)
        if self.attrib.get(name, _ABSENT) != value:
            self.attrib[name] = value
            self._touch()

    def delete_attribute(self, name):
        """Remove attribute *name*; a no-op if it is absent."""
        if self.attrib.pop(name, _ABSENT) is not _ABSENT:
            self._touch()

    @property
    def id(self):
        """The element's ``id`` attribute, or ``None``.

        IDable-node machinery in :mod:`repro.core` builds on this.
        """
        return self.attrib.get("id")

    # ------------------------------------------------------------------
    # Tree mutation
    # ------------------------------------------------------------------
    def append(self, node):
        """Attach *node* (an :class:`Element` or :class:`Text`) as a child."""
        if not isinstance(node, (Element, Text)):
            raise XmlStructureError(f"cannot append {type(node).__name__} to an element")
        if node.parent is not None:
            raise XmlStructureError("node already has a parent; detach it first")
        node.parent = self
        self.children.append(node)
        self._touch()
        return node

    def extend(self, nodes):
        """Append every node in *nodes*."""
        for node in nodes:
            self.append(node)

    def remove(self, node):
        """Detach child *node* from this element."""
        try:
            self.children.remove(node)
        except ValueError:
            raise XmlStructureError("node is not a child of this element") from None
        node.parent = None
        self._touch()

    def detach(self):
        """Detach this element from its parent (no-op if already detached)."""
        if self.parent is not None:
            self.parent.remove(self)
        return self

    def clear_children(self):
        """Remove all children (both elements and text)."""
        if not self.children:
            return
        for child in self.children:
            child.parent = None
        self.children = []
        self._touch()

    def set_text(self, value):
        """Replace all text children with a single text node.

        Element children are preserved.  Passing ``None`` removes all
        character data.
        """
        kept = [c for c in self.children if isinstance(c, Element)]
        if len(kept) != len(self.children):
            for child in self.children:
                if isinstance(child, Text):
                    child.parent = None
            self.children = kept
            self._touch()
        if value is not None:
            self.append(Text(value))

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    @property
    def text(self):
        """Concatenated character data directly under this element.

        Returns ``None`` if the element has no text children at all,
        which distinguishes ``<a/>`` from ``<a></a>`` containing an
        empty text node.
        """
        parts = [c.value for c in self.children if isinstance(c, Text)]
        if not parts:
            return None
        return "".join(parts)

    def string_value(self):
        """The XPath string-value: all descendant text, concatenated."""
        parts = []
        stack = [self]
        while stack:
            node = stack.pop()
            for child in reversed(node.children):
                if isinstance(child, Text):
                    parts.append(child.value)
                else:
                    stack.append(child)
        # The stack-based walk above visits children right-to-left via
        # reversed(), so parts come out in document order already.
        return "".join(parts)

    def element_children(self, tag=None):
        """Iterate over child elements, optionally filtered by *tag*."""
        for child in self.children:
            if isinstance(child, Element) and (tag is None or child.tag == tag):
                yield child

    def child(self, tag, id=None):
        """Return the first child element with *tag* (and *id*), or ``None``.

        Lookups go through a lazily built per-element map from ``tag``
        (and ``(tag, id)``) to the first matching child, invalidated by
        the subtree version stamp, so resolving one hop of an ID path
        is a hash lookup instead of a linear sibling scan.
        """
        maps = self._kid_maps
        if maps is None or maps[0] != self._version:
            first_by_tag = {}
            by_key = {}
            for node in self.children:
                if isinstance(node, Element):
                    first_by_tag.setdefault(node.tag, node)
                    by_key.setdefault((node.tag, node.attrib.get("id")), node)
            maps = (self._version, first_by_tag, by_key)
            self._kid_maps = maps
        if id is None:
            return maps[1].get(tag)
        return maps[2].get((tag, id))

    def iter(self, tag=None):
        """Depth-first iterator over this element and its descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            if tag is None or node.tag == tag:
                yield node
            stack.extend(
                child for child in reversed(node.children) if isinstance(child, Element)
            )

    def descendants(self, tag=None):
        """Like :meth:`iter` but excluding this element itself."""
        iterator = self.iter(tag=None)
        next(iterator)  # skip self
        for node in iterator:
            if tag is None or node.tag == tag:
                yield node

    def ancestors(self):
        """Iterate over ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self):
        """Return the root element of the tree containing this element."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def depth(self):
        """Number of ancestors (the root element has depth 0)."""
        return sum(1 for _ in self.ancestors())

    def path_from_root(self):
        """List of elements from the root down to (and including) self."""
        chain = [self]
        chain.extend(self.ancestors())
        chain.reverse()
        return chain

    # ------------------------------------------------------------------
    # Serialization memo (used by :mod:`repro.xmlkit.serializer`)
    # ------------------------------------------------------------------
    def cached_serialization(self, key):
        """The memoized serialization for *key*, if still valid.

        A cached string is valid only while the subtree version stamp
        it was stored under is current, i.e. nothing in the subtree has
        mutated since.
        """
        cache = self._ser_cache
        if cache is None:
            return None
        entry = cache.get(key)
        if entry is not None and entry[0] == self._version:
            return entry[1]
        return None

    def store_serialization(self, key, text):
        """Memoize *text* as this subtree's serialization for *key*.

        If this node is a still-pristine copy of an origin that has not
        mutated since the copy was taken, the bytes are written back to
        the origin too: the wire paths serialize short-lived copies of
        long-lived database content, and the write-back is what lets
        the *next* answer built from the same content reuse the bytes.
        """
        if self._ser_cache is None:
            self._ser_cache = {}
        self._ser_cache[key] = (self._version, text)
        # Walk the origin chain (copies of copies reach the database
        # element at the end).  Each entry is stored under the stamp
        # that was *validated*, never re-read: a concurrent mutation of
        # the source between check and store then leaves a harmlessly
        # stale entry instead of filing old bytes under a fresh stamp.
        node, stamp = self, self._version
        while True:
            origin = node._ser_origin
            if origin is None:
                break
            source, source_stamp, clone_stamp = origin
            if stamp != clone_stamp or source._version != source_stamp:
                break
            cache = source._ser_cache
            if cache is None:
                cache = source._ser_cache = {}
            cache[key] = (source_stamp, text)
            node, stamp = source, source_stamp

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self):
        """Return a detached deep copy of this subtree.

        Valid serialization memos travel with the copy: the clone is
        content-identical, so bytes cached for this subtree serialize
        the clone too.  This is what lets the wire paths (which copy
        fragments into message envelopes) reuse clean subtrees' bytes.
        """
        clone = Element(self.tag, attrib=self.attrib)
        for child in self.children:
            clone.append(child.copy())
        cache = self._ser_cache
        if cache:
            version = self._version
            # Snapshot: a write-back from another thread may insert a
            # key mid-iteration.
            for key, (stamp, text) in list(cache.items()):
                if stamp == version:
                    clone.store_serialization(key, text)
        clone._ser_origin = (self, self._version, clone._version)
        return clone

    def shallow_copy(self):
        """Return a detached copy with attributes but no children."""
        return Element(self.tag, attrib=self.attrib)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def size(self):
        """Total number of element nodes in this subtree (including self)."""
        return sum(1 for _ in self.iter())

    def __repr__(self):
        ident = f" id={self.id!r}" if self.id is not None else ""
        return f"<Element {self.tag}{ident} children={len(self.children)}>"


class Document:
    """A document node wrapping a single root element.

    XPath distinguishes the document node (matched by ``/``) from the
    root *element*; keeping the distinction explicit simplifies the
    evaluator.
    """

    __slots__ = ("root",)

    def __init__(self, root):
        if not isinstance(root, Element):
            raise XmlStructureError("document root must be an Element")
        self.root = root

    def copy(self):
        """Return a deep copy of the document."""
        return Document(self.root.copy())

    def __repr__(self):
        return f"<Document root={self.root.tag!r}>"
