"""XML substrate: node model, parser, serializer, comparison, merging.

The paper stores sensor data in an off-the-shelf XML database (Apache
Xindice).  No XML library is assumed here; this package provides the
equivalent substrate from scratch.
"""

from repro.xmlkit.compare import canonical_form, diff_trees, tree_hash, trees_equal
from repro.xmlkit.errors import XmlError, XmlMergeError, XmlParseError, XmlStructureError
from repro.xmlkit.merge import (
    copy_without_children,
    default_key,
    graft,
    merge_into,
    prune_to_paths,
    strip_matching,
)
from repro.xmlkit.nodes import Document, Element, Text, is_valid_name
from repro.xmlkit.parser import parse_document, parse_file, parse_fragment
from repro.xmlkit.serializer import (
    escape_attribute,
    escape_text,
    reset_serialization_stats,
    serialization_stats,
    serialize,
    write_file,
)

__all__ = [
    "Document",
    "Element",
    "Text",
    "is_valid_name",
    "parse_document",
    "parse_file",
    "parse_fragment",
    "serialize",
    "serialization_stats",
    "reset_serialization_stats",
    "write_file",
    "escape_text",
    "escape_attribute",
    "canonical_form",
    "trees_equal",
    "tree_hash",
    "diff_trees",
    "merge_into",
    "graft",
    "default_key",
    "strip_matching",
    "prune_to_paths",
    "copy_without_children",
    "XmlError",
    "XmlParseError",
    "XmlStructureError",
    "XmlMergeError",
]
