"""Serialization of the node model back to XML text.

Compact serialization is memoized per subtree: every element can cache
its serialized form together with the subtree version stamp it was
computed under (see :class:`~repro.xmlkit.nodes.Element`).  A later
``serialize`` call reuses the cached bytes for every subtree that has
not mutated since, so re-serializing a large document after a point
update only rebuilds the spine from the mutated node to the root.
The memo is semantically transparent: output is byte-identical with
and without it (``use_cache=False`` forces the uncached path, which
the property tests compare against).
"""

from repro.xmlkit.nodes import Document, Text

_TEXT_TABLE = str.maketrans({"&": "&amp;", "<": "&lt;", ">": "&gt;"})
_ATTR_TABLE = str.maketrans(
    {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}
)

#: Reuse accounting for the serialization memo.  ``cache_hits`` counts
#: subtrees whose bytes were reused verbatim, ``cache_misses`` subtrees
#: that had to be (re)serialized.  Reset with
#: :func:`reset_serialization_stats`.
SERIALIZATION_STATS = {"cache_hits": 0, "cache_misses": 0}


def reset_serialization_stats():
    """Zero the serialization reuse counters (tests, benchmarks)."""
    for key in SERIALIZATION_STATS:
        SERIALIZATION_STATS[key] = 0


def serialization_stats():
    """A snapshot of the serialization reuse counters."""
    return dict(SERIALIZATION_STATS)


def escape_text(value):
    """Escape character data for element content."""
    return value.translate(_TEXT_TABLE)


def escape_attribute(value):
    """Escape character data for a double-quoted attribute value."""
    return value.translate(_ATTR_TABLE)


def _attributes_to_string(element, sort_attributes):
    names = element.attrib
    if sort_attributes:
        names = sorted(names)
    return "".join(
        f' {name}="{escape_attribute(element.attrib[name])}"' for name in names
    )


def _compact_string(node, sort_attributes, use_cache):
    if isinstance(node, Text):
        return escape_text(node.value)
    if use_cache:
        cached = node.cached_serialization(sort_attributes)
        if cached is not None:
            SERIALIZATION_STATS["cache_hits"] += 1
            return cached
        SERIALIZATION_STATS["cache_misses"] += 1
    open_tag = f"<{node.tag}{_attributes_to_string(node, sort_attributes)}"
    if not node.children:
        text = open_tag + "/>"
    else:
        parts = [open_tag, ">"]
        for child in node.children:
            parts.append(_compact_string(child, sort_attributes, use_cache))
        parts.append(f"</{node.tag}>")
        text = "".join(parts)
    if use_cache:
        node.store_serialization(sort_attributes, text)
    return text


def _write_pretty(node, out, indent, level, sort_attributes):
    pad = indent * level
    if isinstance(node, Text):
        out.append(f"{pad}{escape_text(node.value)}\n")
        return
    open_tag = f"{pad}<{node.tag}{_attributes_to_string(node, sort_attributes)}"
    if not node.children:
        out.append(open_tag + "/>\n")
        return
    only_text = all(isinstance(c, Text) for c in node.children)
    if only_text:
        text = escape_text("".join(c.value for c in node.children))
        out.append(f"{open_tag}>{text}</{node.tag}>\n")
        return
    out.append(open_tag + ">\n")
    for child in node.children:
        _write_pretty(child, out, indent, level + 1, sort_attributes)
    out.append(f"{pad}</{node.tag}>\n")


def serialize(node, pretty=False, indent="  ", sort_attributes=False,
              use_cache=True):
    """Serialize an :class:`Element` or :class:`Document` to a string.

    With ``pretty=True`` the output is indented, one element per line.
    With ``sort_attributes=True`` attributes are emitted in sorted order,
    which gives deterministic output useful for hashing and testing.
    ``use_cache=False`` disables the per-subtree memo (compact mode
    only; pretty output is never cached because it depends on depth).
    """
    if isinstance(node, Document):
        node = node.root
    if pretty:
        out = []
        _write_pretty(node, out, indent, 0, sort_attributes)
        return "".join(out)
    return _compact_string(node, sort_attributes, use_cache)


def write_file(node, path, pretty=True):
    """Serialize *node* to the file at *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        handle.write(serialize(node, pretty=pretty))
