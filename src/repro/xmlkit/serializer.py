"""Serialization of the node model back to XML text."""

from repro.xmlkit.nodes import Document, Text

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value):
    """Escape character data for element content."""
    for raw, escaped in _TEXT_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def escape_attribute(value):
    """Escape character data for a double-quoted attribute value."""
    for raw, escaped in _ATTR_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def _attributes_to_string(element, sort_attributes):
    names = element.attrib
    if sort_attributes:
        names = sorted(names)
    return "".join(
        f' {name}="{escape_attribute(element.attrib[name])}"' for name in names
    )


def _write_compact(node, out, sort_attributes):
    if isinstance(node, Text):
        out.append(escape_text(node.value))
        return
    out.append(f"<{node.tag}{_attributes_to_string(node, sort_attributes)}")
    if not node.children:
        out.append("/>")
        return
    out.append(">")
    for child in node.children:
        _write_compact(child, out, sort_attributes)
    out.append(f"</{node.tag}>")


def _write_pretty(node, out, indent, level, sort_attributes):
    pad = indent * level
    if isinstance(node, Text):
        out.append(f"{pad}{escape_text(node.value)}\n")
        return
    open_tag = f"{pad}<{node.tag}{_attributes_to_string(node, sort_attributes)}"
    if not node.children:
        out.append(open_tag + "/>\n")
        return
    only_text = all(isinstance(c, Text) for c in node.children)
    if only_text:
        text = escape_text("".join(c.value for c in node.children))
        out.append(f"{open_tag}>{text}</{node.tag}>\n")
        return
    out.append(open_tag + ">\n")
    for child in node.children:
        _write_pretty(child, out, indent, level + 1, sort_attributes)
    out.append(f"{pad}</{node.tag}>\n")


def serialize(node, pretty=False, indent="  ", sort_attributes=False):
    """Serialize an :class:`Element` or :class:`Document` to a string.

    With ``pretty=True`` the output is indented, one element per line.
    With ``sort_attributes=True`` attributes are emitted in sorted order,
    which gives deterministic output useful for hashing and testing.
    """
    if isinstance(node, Document):
        node = node.root
    out = []
    if pretty:
        _write_pretty(node, out, indent, 0, sort_attributes)
    else:
        _write_compact(node, out, sort_attributes)
    return "".join(out)


def write_file(node, path, pretty=True):
    """Serialize *node* to the file at *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        handle.write(serialize(node, pretty=pretty))
