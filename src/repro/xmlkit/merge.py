"""Structural merging of XML fragments.

Merging is the primitive beneath the paper's caching scheme: when a
(generalized) subquery answer arrives at a site, the returned document
fragment is merged into the site's database.  Children are matched by
their *identity key*, by default ``(tag, @id)`` -- the same notion the
paper's IDable nodes build on.

The cache-specific policy (status tags, timestamps, invariants C1/C2)
lives in :mod:`repro.core.cache`; this module knows only tree structure.
"""

from repro.xmlkit.errors import XmlMergeError
from repro.xmlkit.nodes import Element, Text


def default_key(element):
    """Identity key for sibling matching: ``(tag, @id)``."""
    return (element.tag, element.attrib.get("id"))


def merge_into(target, source, prefer_source=True, key=default_key,
               on_merge=None):
    """Merge the fragment *source* into the tree *target*, in place.

    Both roots must have the same identity key.  For each element:

    * attributes are unioned; on conflict the source value wins when
      ``prefer_source`` is true, otherwise the target value is kept;
    * child elements are matched by *key* and merged recursively;
      unmatched source children are deep-copied into the target;
    * if the source element carries text, it replaces the target text.

    ``on_merge(target_element, source_element)`` is invoked for every
    pair of elements that were matched and merged, letting callers
    layer policy (e.g. status/timestamp reconciliation) on top.

    Returns *target*.
    """
    if key(target) != key(source):
        raise XmlMergeError(
            f"cannot merge fragments with different identities: "
            f"{key(target)!r} vs {key(source)!r}"
        )
    _merge_element(target, source, prefer_source, key, on_merge)
    return target


def _merge_element(target, source, prefer_source, key, on_merge):
    # Attribute writes go through set() so subtree version stamps (and
    # with them the id-path index and serialization memo) stay honest.
    for name, value in source.attrib.items():
        if prefer_source or name not in target.attrib:
            target.set(name, value)

    source_text = source.text
    if source_text is not None:
        target.set_text(source_text)

    index = {}
    for child in target.element_children():
        index.setdefault(key(child), []).append(child)

    for child in source.element_children():
        matches = index.get(key(child))
        if matches:
            _merge_element(matches[0], child, prefer_source, key, on_merge)
        else:
            clone = child.copy()
            target.append(clone)
            index.setdefault(key(clone), []).append(clone)

    if on_merge is not None:
        on_merge(target, source)


def graft(parent, fragment, key=default_key):
    """Attach *fragment* under *parent*, merging if a sibling matches.

    Returns the element inside *parent*'s tree that now holds the
    fragment's content (either a pre-existing matched child or the
    newly attached copy).
    """
    if not isinstance(fragment, Element):
        raise XmlMergeError("can only graft an Element")
    for child in parent.element_children():
        if key(child) == key(fragment):
            _merge_element(child, fragment, True, key, None)
            return child
    clone = fragment.copy()
    parent.append(clone)
    return clone


def strip_matching(element, predicate):
    """Recursively remove descendant elements for which *predicate* holds.

    The element itself is never removed.  Returns the number of
    elements removed.  Useful for evicting cache content in units of
    whole subtrees.
    """
    removed = 0
    for child in list(element.element_children()):
        if predicate(child):
            element.remove(child)
            removed += 1 + sum(1 for _ in child.descendants())
        else:
            removed += strip_matching(child, predicate)
    return removed


def prune_to_paths(element, keep):
    """Remove children not on any path in *keep*.

    *keep* is an iterable of element lists (paths from *element* down).
    Everything not on a kept path is removed.  Used by tests to build
    partial fragments from a full document.
    """
    keep_sets = set()
    for path in keep:
        for node in path:
            keep_sets.add(id(node))
    _prune(element, keep_sets)
    return element


def _prune(element, keep_sets):
    for child in list(element.element_children()):
        if id(child) in keep_sets:
            _prune(child, keep_sets)
        else:
            element.remove(child)


def copy_without_children(element, keep_text=False):
    """Shallow copy; optionally preserving direct text content."""
    clone = element.shallow_copy()
    if keep_text:
        text = element.text
        if text is not None:
            clone.append(Text(text))
    return clone
