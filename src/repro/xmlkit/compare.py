"""Order-insensitive comparison of XML trees.

The paper's data model treats sibling order as meaningless
(Section 3.1), so two documents are "the same" when they are equal up
to reordering of siblings.  Canonicalization sorts siblings by a stable
key: ``(tag, id, full canonical serialization)``.
"""

from repro.xmlkit.nodes import Document, Element, Text
from repro.xmlkit.serializer import escape_attribute, escape_text


def canonical_form(node):
    """Return a canonical string for *node*.

    Two trees have the same canonical form if and only if they are
    equal as unordered documents (same tags, attributes and text, with
    siblings compared as multisets).
    """
    if isinstance(node, Document):
        node = node.root
    if isinstance(node, Text):
        return escape_text(node.value)
    attrs = "".join(
        f' {name}="{escape_attribute(node.attrib[name])}"'
        for name in sorted(node.attrib)
    )
    child_forms = sorted(canonical_form(child) for child in node.children)
    inner = "".join(child_forms)
    return f"<{node.tag}{attrs}>{inner}</{node.tag}>"


def trees_equal(a, b):
    """Return ``True`` if *a* and *b* are equal as unordered trees."""
    return canonical_form(a) == canonical_form(b)


def tree_hash(node):
    """A hash consistent with :func:`trees_equal`."""
    return hash(canonical_form(node))


def _describe(node):
    if isinstance(node, Text):
        return f"text {node.value!r}"
    ident = f" id={node.id!r}" if isinstance(node, Element) and node.id else ""
    return f"<{node.tag}{ident}>"


def diff_trees(a, b, path="/"):
    """Return a list of human-readable differences between two trees.

    Intended for test diagnostics; an empty list means the trees are
    equal as unordered documents.
    """
    if isinstance(a, Document):
        a = a.root
    if isinstance(b, Document):
        b = b.root
    differences = []
    if isinstance(a, Text) or isinstance(b, Text):
        if not (isinstance(a, Text) and isinstance(b, Text)):
            differences.append(f"{path}: {_describe(a)} != {_describe(b)}")
        elif a.value != b.value:
            differences.append(f"{path}: text {a.value!r} != {b.value!r}")
        return differences
    if a.tag != b.tag:
        differences.append(f"{path}: tag {a.tag!r} != {b.tag!r}")
        return differences
    if a.attrib != b.attrib:
        only_a = {k: v for k, v in a.attrib.items() if b.attrib.get(k) != v}
        only_b = {k: v for k, v in b.attrib.items() if a.attrib.get(k) != v}
        differences.append(
            f"{path}{a.tag}: attributes differ (left-only/changed {only_a}, "
            f"right-only/changed {only_b})"
        )
    remaining = list(b.children)
    for child in a.children:
        form = canonical_form(child)
        for index, candidate in enumerate(remaining):
            if canonical_form(candidate) == form:
                del remaining[index]
                break
        else:
            differences.append(
                f"{path}{a.tag}: left child {_describe(child)} has no match"
            )
    for candidate in remaining:
        differences.append(
            f"{path}{a.tag}: right child {_describe(candidate)} has no match"
        )
    return differences
