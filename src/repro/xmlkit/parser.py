"""A hand-written, dependency-free XML parser.

Supports the subset of XML that sensor documents use: a prolog,
comments, CDATA sections, elements, attributes and character data with
the five predefined entities plus numeric character references.

As a convenience, attribute names may be written with a leading ``@``
(``<usRegion @id='NE'>``), matching the notation used in the paper's
figures; the ``@`` is stripped.
"""

from repro.xmlkit.errors import XmlParseError
from repro.xmlkit.nodes import Document, Element, Text, is_valid_name

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}
_WHITESPACE = " \t\r\n"


class _Scanner:
    """Character scanner with line/column tracking."""

    def __init__(self, source):
        self.source = source
        self.pos = 0
        self.length = len(source)

    def location(self, pos=None):
        """Return (line, column), both 1-based, for *pos* (default: current)."""
        if pos is None:
            pos = self.pos
        line = self.source.count("\n", 0, pos) + 1
        last_newline = self.source.rfind("\n", 0, pos)
        column = pos - last_newline
        return line, column

    def error(self, message, pos=None):
        line, column = self.location(pos)
        return XmlParseError(message, line, column)

    def at_end(self):
        return self.pos >= self.length

    def peek(self):
        if self.pos >= self.length:
            return ""
        return self.source[self.pos]

    def advance(self):
        ch = self.source[self.pos]
        self.pos += 1
        return ch

    def startswith(self, prefix):
        return self.source.startswith(prefix, self.pos)

    def consume(self, literal):
        if not self.source.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def skip_whitespace(self):
        while self.pos < self.length and self.source[self.pos] in _WHITESPACE:
            self.pos += 1

    def read_until(self, terminator):
        """Read up to (not including) *terminator*; error if absent."""
        end = self.source.find(terminator, self.pos)
        if end < 0:
            raise self.error(f"unterminated construct, expected {terminator!r}")
        chunk = self.source[self.pos:end]
        self.pos = end + len(terminator)
        return chunk

    def read_name(self):
        start = self.pos
        while self.pos < self.length and self.source[self.pos] not in "=/> \t\r\n<'\"":
            self.pos += 1
        name = self.source[start:self.pos]
        if not name:
            raise self.error("expected a name", start)
        return name


def _decode_entities(text, scanner, base_pos):
    """Expand entity and character references in *text*."""
    if "&" not in text:
        return text
    parts = []
    i = 0
    while True:
        amp = text.find("&", i)
        if amp < 0:
            parts.append(text[i:])
            break
        parts.append(text[i:amp])
        semi = text.find(";", amp + 1)
        if semi < 0:
            raise scanner.error("unterminated entity reference", base_pos + amp)
        name = text[amp + 1:semi]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                parts.append(chr(int(name[2:], 16)))
            except ValueError:
                raise scanner.error(f"bad character reference &{name};", base_pos + amp) from None
        elif name.startswith("#"):
            try:
                parts.append(chr(int(name[1:])))
            except ValueError:
                raise scanner.error(f"bad character reference &{name};", base_pos + amp) from None
        elif name in _ENTITIES:
            parts.append(_ENTITIES[name])
        else:
            raise scanner.error(f"unknown entity &{name};", base_pos + amp)
        i = semi + 1
    return "".join(parts)


def _parse_attributes(scanner):
    """Parse attributes up to the ``>`` or ``/>`` of a start tag."""
    attrib = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or ch == "":
            return attrib
        name_pos = scanner.pos
        name = scanner.read_name()
        if name.startswith("@"):
            name = name[1:]  # paper-figure notation: <tag @id='x'>
        if not is_valid_name(name):
            raise scanner.error(f"invalid attribute name {name!r}", name_pos)
        if name in attrib:
            raise scanner.error(f"duplicate attribute {name!r}", name_pos)
        scanner.skip_whitespace()
        scanner.consume("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        value_pos = scanner.pos
        raw = scanner.read_until(quote)
        if "<" in raw:
            raise scanner.error("'<' not allowed in attribute value", value_pos)
        attrib[name] = _decode_entities(raw, scanner, value_pos)


def _skip_misc(scanner):
    """Skip whitespace, comments, PIs and doctype between top-level items."""
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("<!--"):
            scanner.pos += 4
            scanner.read_until("-->")
        elif scanner.startswith("<?"):
            scanner.pos += 2
            scanner.read_until("?>")
        elif scanner.startswith("<!DOCTYPE"):
            # Naive doctype skip: no internal subset support.
            scanner.read_until(">")
        else:
            return


def _parse_element(scanner):
    """Parse one element (the scanner must be positioned at its ``<``)."""
    start_pos = scanner.pos
    scanner.consume("<")
    name_pos = scanner.pos
    tag = scanner.read_name()
    if not is_valid_name(tag):
        raise scanner.error(f"invalid element name {tag!r}", name_pos)
    attrib = _parse_attributes(scanner)
    element = Element(tag, attrib=attrib)
    if scanner.startswith("/>"):
        scanner.pos += 2
        return element
    scanner.consume(">")

    text_start = scanner.pos
    text_parts = []

    def flush_text():
        if scanner.pos > text_start:
            raw = scanner.source[text_start:scanner.pos]
            text_parts.append(_decode_entities(raw, scanner, text_start))

    while True:
        if scanner.at_end():
            raise scanner.error(f"unclosed element <{tag}>", start_pos)
        ch = scanner.peek()
        if ch == "<":
            flush_text()
            if scanner.startswith("</"):
                scanner.pos += 2
                close_pos = scanner.pos
                close_tag = scanner.read_name()
                if close_tag != tag:
                    raise scanner.error(
                        f"mismatched closing tag </{close_tag}>, expected </{tag}>",
                        close_pos,
                    )
                scanner.skip_whitespace()
                scanner.consume(">")
                break
            if scanner.startswith("<!--"):
                scanner.pos += 4
                scanner.read_until("-->")
            elif scanner.startswith("<![CDATA["):
                scanner.pos += 9
                text_parts.append(scanner.read_until("]]>"))
            elif scanner.startswith("<?"):
                scanner.pos += 2
                scanner.read_until("?>")
            else:
                element.append(_parse_element(scanner))
            text_start = scanner.pos
        else:
            scanner.pos += 1

    text = "".join(text_parts)
    if text.strip():
        element.append(Text(text.strip()))
    return element


def parse_fragment(source):
    """Parse *source* and return the root :class:`Element`.

    Leading/trailing whitespace, a prolog and comments are allowed
    around the single top-level element.  Surrounding whitespace inside
    text content is stripped (sensor documents are data-centric).
    """
    scanner = _Scanner(source)
    _skip_misc(scanner)
    if scanner.peek() != "<":
        raise scanner.error("expected start of an element")
    element = _parse_element(scanner)
    _skip_misc(scanner)
    if not scanner.at_end():
        raise scanner.error("unexpected content after the root element")
    return element


def parse_document(source):
    """Parse *source* and return a :class:`Document`."""
    return Document(parse_fragment(source))


def parse_file(path):
    """Parse the XML file at *path* and return a :class:`Document`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_document(handle.read())
