"""Exception hierarchy for the XML toolkit."""


class XmlError(Exception):
    """Base class for all errors raised by :mod:`repro.xmlkit`."""


class XmlParseError(XmlError):
    """Raised when a document cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position so callers can produce precise diagnostics.
    """

    def __init__(self, message, line, column):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class XmlStructureError(XmlError):
    """Raised when a tree operation would corrupt document structure.

    Examples: attaching a node that already has a parent, removing a
    child from an element that does not contain it, or creating an
    element with an invalid name.
    """


class XmlMergeError(XmlError):
    """Raised when two fragments cannot be merged consistently."""
