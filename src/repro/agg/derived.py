"""Derived sensors: formula-defined virtual readings.

A derived sensor is an ordinary IDable node in the document whose
``value`` element is maintained by the aggregation manager instead of
a physical device: its *formula* is an XPath arithmetic expression
over aggregate calls, e.g. ::

    avg(/region[@id='R']/group[@id='g0']/sensor/value) - 2.5

The formula compiles through the ordinary XPath parser; dependency
extraction walks the compiled tree and collects each aggregate's
IDable anchor -- the input regions.  The manager subscribes a
:mod:`repro.net.continuous` query on every region, so whenever covered
data changes the sensor re-evaluates (each aggregate resolved through
:meth:`OrganizingAgent.answer_scalar`, i.e. through the summary cache)
and writes its value back like any physical update -- making derived
sensors queryable, cacheable and replicable exactly like the real
ones.

The allowed grammar is deliberately small and total: number literals,
unary minus, ``+ - * div mod``, and ``count/sum/avg/min/max`` over an
absolute anchored path.  Anything else is rejected at registration,
not at refresh time.
"""

from repro.core.errors import CoreError
from repro.core.subquery import render_id_path_query
from repro.xpath import parser as xpath_parser
from repro.xpath.analysis import extract_id_path
from repro.xpath.ast import (
    BinaryOperation,
    FunctionCall,
    LocationPath,
    NumberLiteral,
    UnaryMinus,
)
from repro.xpath.types import format_number

from repro.agg.partial import SHAPES

_OPERATORS = ("+", "-", "*", "div", "mod")


class FormulaError(CoreError):
    """The formula is outside the derived-sensor grammar."""


def compile_formula(formula):
    """Parse and validate *formula*; returns ``(ast, anchors)``.

    *anchors* are the distinct IDable region paths the formula's
    aggregates read -- the sensor's dependency set, in first-seen
    order.
    """
    try:
        ast = xpath_parser.parse(formula)
    except Exception as exc:
        raise FormulaError(f"cannot parse formula {formula!r}: {exc}") \
            from exc
    anchors = []
    _validate(ast, anchors, formula)
    if not anchors:
        raise FormulaError(
            f"formula {formula!r} reads no sensor data (no aggregate "
            "call); a constant is not a derived sensor")
    return ast, anchors


def _validate(node, anchors, formula):
    if isinstance(node, NumberLiteral):
        return
    if isinstance(node, UnaryMinus):
        _validate(node.operand, anchors, formula)
        return
    if isinstance(node, BinaryOperation) and node.operator in _OPERATORS:
        _validate(node.left, anchors, formula)
        _validate(node.right, anchors, formula)
        return
    if isinstance(node, FunctionCall) and node.name in SHAPES:
        if len(node.arguments) != 1 or \
                not isinstance(node.arguments[0], LocationPath) or \
                not node.arguments[0].absolute:
            raise FormulaError(
                f"{node.name}() in {formula!r} needs exactly one "
                "absolute location-path argument")
        anchor = tuple(tuple(entry) for entry
                       in extract_id_path(node.arguments[0]))
        if not anchor:
            raise FormulaError(
                f"{node.name}() in {formula!r} must pin an IDable "
                "anchor (e.g. /region[@id='R']/...)")
        if anchor not in anchors:
            anchors.append(anchor)
        return
    raise FormulaError(
        f"unsupported construct {type(node).__name__} in {formula!r}; "
        f"allowed: literals, - {' '.join(_OPERATORS)}, "
        f"{'/'.join(SHAPES)}(path)")


class DerivedSensor:
    """One registered formula sensor (state lives on its owner's OA)."""

    def __init__(self, identifier, node_path, formula):
        self.identifier = identifier
        self.node_path = tuple(tuple(entry) for entry in node_path)
        self.formula = formula
        self.ast, self.anchors = compile_formula(formula)
        self.subscriptions = []
        self.last_value = None
        self._refreshing = False

    def dependency_queries(self):
        """One region-subtree query per dependency anchor."""
        return [render_id_path_query(anchor) for anchor in self.anchors]

    # -- reentrancy guard ----------------------------------------------
    # The write-back fires continuous subscriptions that may cover the
    # sensor's own region; the nested refresh must be absorbed, not
    # recursed into.
    def begin_refresh(self):
        if self._refreshing:
            return False
        self._refreshing = True
        return True

    def end_refresh(self):
        self._refreshing = False

    # -- evaluation ----------------------------------------------------
    def evaluate(self, answer_scalar):
        """The formula's current value; *answer_scalar* resolves one
        aggregate call (given its query text) to a float."""
        return self._eval(self.ast, answer_scalar)

    def _eval(self, node, answer_scalar):
        if isinstance(node, NumberLiteral):
            return float(node.value)
        if isinstance(node, UnaryMinus):
            return -self._eval(node.operand, answer_scalar)
        if isinstance(node, BinaryOperation):
            left = self._eval(node.left, answer_scalar)
            right = self._eval(node.right, answer_scalar)
            if node.operator == "+":
                return left + right
            if node.operator == "-":
                return left - right
            if node.operator == "*":
                return left * right
            try:
                if node.operator == "div":
                    return left / right
                return left % right
            except ZeroDivisionError:
                if node.operator == "mod" or left == 0 or left != left:
                    return float("nan")
                return float("inf") if left > 0 else float("-inf")
        return float(answer_scalar(node.unparse()))

    def render(self, value):
        """The value's document spelling (XPath number formatting)."""
        return format_number(float(value))

    def __repr__(self):
        return (f"DerivedSensor({self.identifier!r}, "
                f"deps={len(self.anchors)}, last={self.last_value!r})")
