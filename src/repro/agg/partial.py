"""The partial-aggregate algebra: exact, mergeable, order-free.

A :class:`Partial` is the merge-state of one region's contribution to
an aggregate query -- the ``(count, sum, min, max)`` tuple of the
Multiresolution Cube Estimators shape, carried in a representation
chosen so that **merging is associative, commutative and
duplicate-safe** (the properties the hierarchy depends on and the
property tests pin):

* the running sum is an exact rational (``fractions.Fraction``), not a
  float -- float addition is famously non-associative, and a sum that
  depends on merge order would make the rollup tree's answer depend on
  which child replied first.  Conversion ``float -> Fraction`` is
  exact; the single rounding happens once, at :func:`finalize`;
* non-finite inputs never enter the rational: ``NaN`` poisons the
  whole partial (one ``nan`` flag), infinities are tracked as signed
  presence flags, so ``inf + (-inf) = NaN`` falls out of flag algebra
  instead of float accumulation order;
* ``min``/``max`` track finite extrema only (a total order, hence
  associative) and re-introduce infinities from the flags at
  finalization.

Value extraction mirrors the XPath evaluator exactly --
``to_number(node_string_value(node))`` -- so ``count`` and ``sum``
answered from summaries agree with the naive
:func:`~repro.xpath.functions.fn_count` / ``fn_sum`` fan-out path.

A **merge-state** is a mapping ``{region id_path: (Partial, data_ts)}``
-- one entry per contributing subtree.  Merging two states is a keyed
union where a key present in both resolves deterministically to the
entry with the larger ``(data_ts, encoding)`` pair: merging a state
with itself (a duplicated reply) is a no-op, and merge order never
matters.  :func:`collapse` folds a state into one ``(Partial, ts)``
pair -- what a site ships upward, keyed by its own region, so state
maps stay fan-out-sized instead of leaf-sized.
"""

import math
from fractions import Fraction

#: The aggregate shapes the subsystem serves.  ``count`` and ``sum``
#: exist in the evaluator's core library too (the naive fallback);
#: ``avg``/``min``/``max`` are new capability only the rollup path
#: provides.
SHAPES = ("count", "sum", "avg", "min", "max")


class Partial:
    """One mergeable partial aggregate (see module docstring)."""

    __slots__ = ("count", "total", "nan", "pos_inf", "neg_inf",
                 "minimum", "maximum")

    def __init__(self, count=0, total=Fraction(0), nan=False,
                 pos_inf=False, neg_inf=False, minimum=None, maximum=None):
        self.count = int(count)
        self.total = total if isinstance(total, Fraction) \
            else Fraction(total)
        self.nan = bool(nan)
        self.pos_inf = bool(pos_inf)
        self.neg_inf = bool(neg_inf)
        self.minimum = minimum
        self.maximum = maximum

    @classmethod
    def of_values(cls, values):
        """The partial over an iterable of extracted numbers."""
        partial = cls()
        for value in values:
            partial.add(float(value))
        return partial

    def add(self, value):
        """Fold one extracted value in (mutates; builders only)."""
        self.count += 1
        if math.isnan(value):
            self.nan = True
            return
        if math.isinf(value):
            if value > 0:
                self.pos_inf = True
            else:
                self.neg_inf = True
            return
        self.total += Fraction(value)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other):
        """The combined partial (pure; the merge-operator core)."""
        merged = Partial(
            count=self.count + other.count,
            total=self.total + other.total,
            nan=self.nan or other.nan,
            pos_inf=self.pos_inf or other.pos_inf,
            neg_inf=self.neg_inf or other.neg_inf,
        )
        lows = [x for x in (self.minimum, other.minimum) if x is not None]
        highs = [x for x in (self.maximum, other.maximum) if x is not None]
        merged.minimum = min(lows) if lows else None
        merged.maximum = max(highs) if highs else None
        return merged

    # -- finalization --------------------------------------------------
    def _sum(self):
        if self.nan or (self.pos_inf and self.neg_inf):
            return float("nan")
        if self.pos_inf:
            return float("inf")
        if self.neg_inf:
            return float("-inf")
        try:
            return float(self.total)
        except OverflowError:
            # The exact total is finite but beyond float range; the
            # correctly-rounded float is the signed infinity.
            return float("inf") if self.total > 0 else float("-inf")

    def finalize(self, shape):
        """The scalar answer for *shape*, as the evaluator would type it.

        ``count`` is ``float(count)`` (``fn_count`` returns a float);
        ``sum`` of nothing is ``0.0`` (``fn_sum`` over an empty
        node-set); ``avg``/``min``/``max`` of nothing are ``NaN``, and
        any ``NaN`` input poisons every shape but ``count``.
        """
        if shape == "count":
            return float(self.count)
        if shape == "sum":
            return self._sum()
        if self.count == 0 or self.nan:
            return float("nan")
        if shape == "avg":
            total = self._sum()
            if math.isnan(total) or math.isinf(total):
                return total
            return total / self.count
        if shape == "min":
            if self.neg_inf:
                return float("-inf")
            return self.minimum if self.minimum is not None \
                else float("inf")
        if shape == "max":
            if self.pos_inf:
                return float("inf")
            return self.maximum if self.maximum is not None \
                else float("-inf")
        raise ValueError(f"unknown aggregate shape {shape!r}")

    # -- wire form -----------------------------------------------------
    def to_attrs(self):
        """The flat string-attribute form the wire codec embeds."""
        attrs = {
            "count": str(self.count),
            "num": str(self.total.numerator),
            "den": str(self.total.denominator),
        }
        if self.nan:
            attrs["nan"] = "1"
        if self.pos_inf:
            attrs["pinf"] = "1"
        if self.neg_inf:
            attrs["ninf"] = "1"
        if self.minimum is not None:
            attrs["lo"] = repr(float(self.minimum))
        if self.maximum is not None:
            attrs["hi"] = repr(float(self.maximum))
        return attrs

    @classmethod
    def from_attrs(cls, attrs):
        get = attrs.get
        minimum = get("lo")
        maximum = get("hi")
        return cls(
            count=int(get("count", "0")),
            total=Fraction(int(get("num", "0")), int(get("den", "1"))),
            nan=get("nan") == "1",
            pos_inf=get("pinf") == "1",
            neg_inf=get("ninf") == "1",
            minimum=float(minimum) if minimum is not None else None,
            maximum=float(maximum) if maximum is not None else None,
        )

    def signature(self):
        """A canonical, order-free identity (ties in state merges)."""
        return tuple(sorted(self.to_attrs().items()))

    def __eq__(self, other):
        return isinstance(other, Partial) and \
            self.signature() == other.signature()

    def __hash__(self):
        return hash(self.signature())

    def __repr__(self):
        return (f"Partial(count={self.count}, sum={self._sum()!r}, "
                f"min={self.minimum!r}, max={self.maximum!r})")


# ----------------------------------------------------------------------
# Merge-states: {region id_path: (Partial, data_ts)}
# ----------------------------------------------------------------------
def _as_path(id_path):
    return tuple(tuple(entry) for entry in id_path)


def state_of(region, partial, data_ts):
    """A single-entry merge-state."""
    return {_as_path(region): (partial, float(data_ts))}


def merge_states(*states):
    """The keyed union of merge-states (associative/commutative).

    A region present in several states resolves to the entry with the
    larger ``(data_ts, partial signature)`` pair -- a total order, so
    any merge tree over the same multiset of states yields the same
    result, and a duplicated state changes nothing.
    """
    merged = {}
    for state in states:
        for region, (partial, data_ts) in state.items():
            region = _as_path(region)
            existing = merged.get(region)
            if existing is not None and \
                    (existing[1], existing[0].signature()) >= \
                    (data_ts, partial.signature()):
                continue
            merged[region] = (partial, data_ts)
    return merged


def collapse(state, now=None):
    """Fold a merge-state into one ``(Partial, data_ts)`` pair.

    The timestamp is the **minimum** over entries -- a rollup is only
    as fresh as its stalest contributor.  An empty state collapses to
    an empty partial stamped *now* (``0.0`` without one).
    """
    partial = Partial()
    data_ts = None
    for entry, ts in state.values():
        partial = partial.merge(entry)
        data_ts = ts if data_ts is None else min(data_ts, ts)
    if data_ts is None:
        data_ts = float(now) if now is not None else 0.0
    return partial, data_ts
