"""Hierarchical aggregation and derived sensors.

Aggregate queries (``count``/``sum``/``avg``/``min``/``max`` over an
anchored path) are answered from **summaries**: mergeable partial
aggregates cached per IDable subtree at every organizing agent, merged
deterministically up the hierarchy via partial-aggregate wire messages
that carry merge-state tuples instead of subtrees -- a county-level
``avg`` over a million sensors never fans out to the leaves.  Derived
sensors define virtual readings as formulas over those aggregates,
re-evaluated through continuous-query subscriptions on their input
regions.

Disabled (the default), the subsystem adds no wire messages and no
envelope bytes: traffic is byte-identical to a build without it.
"""

from repro.agg.derived import DerivedSensor, FormulaError, compile_formula
from repro.agg.manager import (
    AggregationConfig,
    AggregationManager,
    AggregationUnavailable,
    AggregationUnsupported,
)
from repro.agg.partial import (
    SHAPES,
    Partial,
    collapse,
    merge_states,
    state_of,
)
from repro.agg.summary import SummaryCache, summary_key

__all__ = [
    "AggregationConfig",
    "AggregationManager",
    "AggregationUnavailable",
    "AggregationUnsupported",
    "DerivedSensor",
    "FormulaError",
    "Partial",
    "SHAPES",
    "SummaryCache",
    "collapse",
    "compile_formula",
    "merge_states",
    "state_of",
    "summary_key",
]
