"""The per-site summary cache: merge-states keyed by (region, path).

A :class:`SummaryCache` stores the merged merge-state of one rollup --
``{region: (Partial, data_ts)}`` -- under a key combining the region's
id path with the *freshness-stripped* canonical text of the inner
location path.  Stripping the consistency predicates from the key is
the semcache bucketing reuse: ``sensor[timestamp() > current-time() -
28]`` and ``... - 30`` canonicalize (bucketed) to the same loosened
bound, compute the same rollup, and share one summary entry; serving
is still subsumption-checked against each caller's **original** bound
by the underlying :class:`~repro.core.semcache.SemanticCache` (entry
tolerance slack charged against the allowed age, PR 7 discipline).

All shapes over the same inner path share one entry too: the stored
value is the full ``(count, sum, min, max)`` merge-state, so a
``count`` rollup prewarms the ``avg`` that follows it.

The cache inherits the semcache's size-aware LRU, counters and
``peek`` (EXPLAIN reads without distorting hit ratios) wholesale.
"""

from repro.core.idable import format_id_path
from repro.core.semcache import SemanticCache, SemanticCacheConfig
from repro.xpath.analysis import REF_CONSISTENCY, classify_predicate
from repro.xpath.ast import LocationPath, Step


def strip_consistency(path):
    """*path* with every pure consistency predicate removed.

    The returned :class:`LocationPath` is the *summary identity* of the
    ask: what data it rolls up, independent of how fresh the caller
    needs it.  Id pins and any other predicates stay.
    """
    steps = []
    for step in path.steps:
        predicates = [
            predicate for predicate in step.predicates
            if classify_predicate(predicate) != frozenset({REF_CONSISTENCY})
        ]
        steps.append(Step(step.axis, step.node_test, predicates))
    return LocationPath(path.absolute, steps)


def summary_key(region, inner_path):
    """The cache key for *inner_path* rolled up under *region*."""
    stripped = strip_consistency(inner_path)
    return f"{format_id_path(region)}::{stripped.unparse()}"


class SummaryCache:
    """A :class:`SemanticCache` of merge-states (see module docstring)."""

    def __init__(self, max_entries=256, max_bytes=4 * 1024 * 1024):
        self._cache = SemanticCache(SemanticCacheConfig(
            enabled=True, buckets=None,
            max_entries=max_entries, max_bytes=max_bytes,
        ))

    def lookup(self, key, now, max_age=None, tolerance=None):
        """The cached merge-state entry iff it satisfies *max_age*.

        *max_age* is the caller's original freshness bound; ``None``
        never serves (an unbounded aggregate always recomputes, exactly
        like the scalar :class:`~repro.core.aggregates.AggregateCache`).
        """
        return self._cache.lookup(key, now, max_age=max_age,
                                  tolerance=tolerance)

    def store(self, key, state, now, tolerance=None):
        """Cache *state* computed at *now* under *tolerance* (the
        bucketed bound it was computed with)."""
        nbytes = 96 + 160 * len(state)
        return self._cache.store(key, state, now, nbytes=nbytes,
                                 tolerance=tolerance)

    def peek(self, key):
        return self._cache.peek(key)

    def invalidate(self, key=None):
        self._cache.invalidate(key)

    def evict_regions(self, id_paths):
        """Drop every summary whose region overlaps one of *id_paths*.

        Called on the old owner when a subtree migrates away: its
        summaries over that region stop seeing the updates that kept
        them honest, so they must go.  Region containment is checked
        on the formatted id-path prefix (both directions -- a summary
        *under* a migrated path is orphaned, and a summary *above* it
        folded the migrated data in).  Returns the eviction count.
        """
        targets = [format_id_path(tuple(tuple(entry) for entry in path))
                   for path in id_paths]

        def overlaps(key):
            region = key.split("::", 1)[0]
            for target in targets:
                if region == target or \
                        region.startswith(target + "/") or \
                        target.startswith(region + "/"):
                    return True
            return False

        return self._cache.evict_matching(overlaps)

    def __len__(self):
        return len(self._cache)

    def metrics(self):
        """Counter snapshot (hits/misses/stale_rejects/stores/...)."""
        return self._cache.metrics()

    def __repr__(self):
        return f"SummaryCache({len(self)} entries)"
