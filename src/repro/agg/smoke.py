"""Aggregation smoke check: a real TCP rollup plus a derived sensor.

``python -m repro.agg.smoke`` (needs ``PYTHONPATH=src:.``) stands up a
three-site TCP deployment with aggregation enabled and walks the
tentpole loop over real sockets:

* hierarchical rollups: all five shapes over the whole region, each
  answered through partial-aggregate subqueries to the two child
  sites, with ``count``/``sum`` checked against hand-computed truth;
* summary caching: the same bounded ask twice is one rollup and one
  summary hit;
* a derived sensor registered at the root: its initial value is
  written into the document, and a sensor update on a child site
  (through the OA's update handler, over TCP) re-fires it through the
  continuous-query subscription.

A JSON summary of the rollup/summary/derived counters is written
under ``--artifacts`` (default ``agg-smoke/``) so CI can archive what
the hierarchy actually did.
"""

import argparse
import json
import os
import sys


def _document():
    from repro.xmlkit import Element

    root = Element("region", attrib={"id": "R"})
    for group_index in range(2):
        group = Element("group", attrib={"id": f"g{group_index}"})
        root.append(group)
        for sensor_index in range(3):
            sensor = Element("sensor",
                             attrib={"id": f"s{sensor_index}"})
            sensor.append(Element(
                "value", text=str(10 * group_index + sensor_index)))
            group.append(sensor)
    # One sensor owned by the root site itself: the local tick that
    # wakes root-hosted continuous subscriptions (the documented
    # continuous-query scope -- remote updates are seen on the next
    # locally triggered re-evaluation).
    heartbeat = Element("sensor", attrib={"id": "hb"})
    heartbeat.append(Element("value", text="0"))
    root.append(heartbeat)
    return root


def _plan():
    from repro.core import PartitionPlan

    return PartitionPlan({
        "top": [(("region", "R"),)],
        "mid": [(("region", "R"), ("group", "g0"))],
        "leaf": [(("region", "R"), ("group", "g1"))],
    })


ALL_VALUES = "/region[@id='R']/group/sensor/value"
BOUNDED = ALL_VALUES + "[timestamp() > current-time() - 120]"
#: values 0,1,2 (g0) and 10,11,12 (g1); the root heartbeat sensor is
#: not under a group, so no shape sees it.
TRUTH = {"count": 6.0, "sum": 36.0, "avg": 6.0, "min": 0.0, "max": 12.0}
G1_S2 = (("region", "R"), ("group", "g1"), ("sensor", "s2"))
HEARTBEAT = (("region", "R"), ("sensor", "hb"))
FORMULA = f"max({ALL_VALUES}) - min({ALL_VALUES})"


def _run():
    from repro.agg import AggregationConfig
    from repro.net import BreakerPolicy, OAConfig, RetryPolicy
    from repro.net.messages import UpdateMessage
    from repro.net.tcpruntime import TcpCluster

    problems = []
    oa_config = OAConfig(
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0,
                                 max_delay=0.0, jitter=0.0,
                                 sleep=lambda seconds: None),
        breaker=BreakerPolicy(failure_threshold=3, reset_timeout=0.05))
    ticks = {"now": 0.0}

    def clock():
        ticks["now"] += 1.0
        return ticks["now"]

    tcp = TcpCluster(_document(), _plan(), oa_config=oa_config,
                     aggregation=AggregationConfig(), clock=clock)
    try:
        cluster = tcp.cluster

        # 1. Every shape, rolled up over the wire.
        for shape, expected in TRUTH.items():
            value = cluster.scalar(f"{shape}({ALL_VALUES})",
                                   at_site="top")
            if value != expected:
                problems.append(
                    f"{shape}: rollup said {value!r}, truth {expected!r}")
        manager = cluster.agents["top"].aggregation
        if manager.counters()["partials_fetched"] == 0:
            problems.append("no partial-aggregate subquery was sent")

        # 2. The bounded ask twice: *both* are summary hits -- the
        #    unbounded rollups above already stored the merge-state
        #    under the same freshness-stripped key (cross-shape and
        #    cross-bound sharing).
        before = manager.counters()["summary"]["hits"]
        for _ in range(2):
            cluster.scalar(f"avg({BOUNDED})", at_site="top")
        if manager.counters()["summary"]["hits"] != before + 2:
            problems.append("bounded asks were not summary-served")

        # 3. A derived sensor: spread = max - min, refreshed by an
        #    update that arrives at a *child* site over TCP.
        sensor = cluster.register_derived_sensor(
            (("region", "R"),), "spread", FORMULA)
        if sensor.last_value != 12.0:
            problems.append(
                f"derived initial value {sensor.last_value!r}, wanted 12.0")
        cluster.agents["leaf"].handle_message(UpdateMessage(
            G1_S2, values={"value": "50"}, sender="sa-smoke"))
        # The subscription lives at the root owner, so a *root-owned*
        # update wakes it; the refresh then recomputes the rollup and
        # picks up the leaf's new value over the wire.
        cluster.agents["top"].handle_message(UpdateMessage(
            HEARTBEAT, values={"value": "1"}, sender="sa-smoke"))
        if sensor.last_value != 50.0:
            problems.append(
                f"derived sensor did not re-fire: {sensor.last_value!r}")
        derived_answer = cluster.scalar(
            "count(/region[@id='R']/derived[@id='spread'])",
            at_site="top")
        if derived_answer != 1.0:
            problems.append("derived sensor is not queryable")

        counters = manager.counters()
        summary = {
            "shapes_checked": sorted(TRUTH),
            "formula": FORMULA,
            "derived_final_value": sensor.last_value,
            "site_counters": {
                site: cluster.agents[site].aggregation.counters()
                for site in ("top", "mid", "leaf")},
            "summary_hit_ratio": counters["summary_hit_ratio"],
            "ok": not problems,
        }
        return problems, summary
    finally:
        tcp.close()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="hierarchical aggregation + derived sensor smoke check")
    parser.add_argument("--artifacts", default="agg-smoke",
                        help="directory for the rollup summary")
    args = parser.parse_args(argv)

    problems, summary = _run()

    os.makedirs(args.artifacts, exist_ok=True)
    summary_path = os.path.join(args.artifacts, "rollup.json")
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    fetched = summary["site_counters"]["top"]["partials_fetched"]
    print(f"OK: five shapes rolled up over TCP ({fetched} partial-"
          f"aggregate subqueries from 'top'), repeat ask summary-served, "
          f"derived sensor 'spread' re-fired to "
          f"{summary['derived_final_value']:g}.")
    print(f"Artifacts in {args.artifacts}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
