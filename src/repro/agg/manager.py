"""The per-site aggregation manager: summaries, rollups, derived input.

One :class:`AggregationManager` hangs off each organizing agent when
``OAConfig.aggregation`` is an enabled :class:`AggregationConfig`.
Aggregate queries still arrive through the ordinary scalar entry point
(:meth:`OrganizingAgent.answer_scalar` consults the manager first);
the manager answers the shapes it supports hierarchically:

* **summary first**: the rollup's merge-state may already be cached in
  the :class:`~repro.agg.summary.SummaryCache`, keyed by (region,
  freshness-stripped inner path) and served under the caller's
  original bound -- semcache bucketing reuse, so jitter-equivalent
  tolerances share one entry;
* **local rollup**: matches whose whole IDable chain from the region
  down is owned here fold into one exact
  :class:`~repro.agg.partial.Partial`;
* **partial-aggregate subqueries**: every IDable *frontier* (an
  unowned IDable node the inner path can reach) is asked for its
  collapsed merge-state with one
  :class:`~repro.net.messages.PartialAggregateRequest` -- tuples on
  the wire, never subtrees -- and child sites recurse, so interior
  OAs cache intermediate rollups and the hierarchy amortizes.

Any failure (dead child, disabled peer, a query shape outside the
algebra) degrades to the naive gather fan-out for ``count``/``sum``
(the evaluator's own shapes); ``avg``/``min``/``max`` exist only here
and surface the error instead.

Disabled (the default), the subsystem adds no wire messages and no
envelope bytes: traffic is byte-identical to a build without it.
"""

import threading

from repro.core.errors import CoreError, UnsupportedDistributedQueryError
from repro.core.idable import idable_children, node_id
from repro.core.semcache import (
    DEFAULT_BUCKET_BOUNDARIES,
    FreshnessBuckets,
    canonicalize,
)
from repro.core.status import Status, get_status, get_timestamp
from repro.net.errors import NetError
from repro.net.messages import (
    ErrorMessage,
    PartialAggregateAnswer,
    PartialAggregateRequest,
)
from repro.xpath import parser as xpath_parser
from repro.xpath.analysis import (
    REF_CONSISTENCY,
    REF_ID,
    classify_predicate,
    extract_id_path,
    single_id_value,
)
from repro.xpath.ast import (
    BinaryOperation,
    FunctionCall,
    LocationPath,
    NameTest,
)
from repro.xpath.evaluator import Evaluator
from repro.xpath.types import AttributeRef, node_string_value, to_number

from repro.agg.partial import (
    SHAPES,
    Partial,
    collapse,
    merge_states,
    state_of,
)
from repro.agg.summary import SummaryCache, summary_key

_EVALUATOR = Evaluator()


class AggregationUnsupported(UnsupportedDistributedQueryError):
    """The query is aggregate-shaped but outside the rollup algebra."""


class AggregationUnavailable(CoreError):
    """A rollup could not complete (dead child, disabled peer, ...)."""


class AggregationConfig:
    """Tunables for hierarchical aggregation at one site.

    ``enabled``
        master switch; ``False`` keeps the wire byte-identical to a
        build without the subsystem;
    ``buckets``
        the :class:`~repro.core.semcache.FreshnessBuckets` used to
        loosen in-query tolerances before computing (and keying)
        rollups -- shared boundaries with the semantic cache so both
        subsystems coalesce the same jitter;
    ``max_entries`` / ``max_bytes``
        the :class:`~repro.agg.summary.SummaryCache` LRU budget.
    """

    def __init__(self, enabled=True, buckets=DEFAULT_BUCKET_BOUNDARIES,
                 max_entries=256, max_bytes=4 * 1024 * 1024):
        self.enabled = bool(enabled)
        if buckets is None:
            self.buckets = None
        elif isinstance(buckets, FreshnessBuckets):
            self.buckets = buckets
        else:
            self.buckets = FreshnessBuckets(buckets)
        self.max_entries = max_entries
        self.max_bytes = max_bytes

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return f"AggregationConfig({state}, max_entries={self.max_entries})"


class _Plan:
    """One supported aggregate ask, decomposed."""

    __slots__ = ("shape", "inner", "inner_source", "anchor",
                 "tolerance", "bucket_bound")

    def __init__(self, shape, inner, inner_source, anchor, tolerance,
                 bucket_bound):
        self.shape = shape
        self.inner = inner
        self.inner_source = inner_source
        self.anchor = anchor
        self.tolerance = tolerance
        self.bucket_bound = bucket_bound


def _conjuncts(predicate):
    if isinstance(predicate, BinaryOperation) and predicate.operator == "and":
        yield from _conjuncts(predicate.left)
        yield from _conjuncts(predicate.right)
    else:
        yield predicate


def _as_path(id_path):
    return tuple(tuple(entry) for entry in id_path)


class AggregationManager:
    """One site's hierarchical-aggregation state (see module docstring)."""

    def __init__(self, agent):
        self.agent = agent
        self.config = agent.config.aggregation
        self.summaries = SummaryCache(
            max_entries=self.config.max_entries,
            max_bytes=self.config.max_bytes,
        )
        self.derived = {}
        self._lock = threading.Lock()
        self.stats = {
            "answers": 0,
            "rollups": 0,
            "rollup_matches": 0,
            "partials_fetched": 0,
            "partials_served": 0,
            "partial_failures": 0,
            "fallbacks": 0,
            "unsupported_queries": 0,
            "derived_refreshes": 0,
            "derived_refresh_errors": 0,
        }

    @property
    def enabled(self):
        return self.config is not None and self.config.enabled

    # ------------------------------------------------------------------
    # The query-side entry point
    # ------------------------------------------------------------------
    def try_answer(self, query, now=None, max_age=None, precision=None):
        """Answer an aggregate query from summaries, or decline.

        Returns ``(handled, value)``.  ``handled`` is ``False`` when
        the query is not aggregate-shaped, or when a ``count``/``sum``
        rollup cannot complete -- the caller then takes the ordinary
        gather path untouched.  ``avg``/``min``/``max`` have no naive
        fallback: an unsupported or failed rollup raises.
        """
        if not self.enabled:
            return False, None
        plan = self._plan(query)
        if plan is None:
            return False, None
        if precision is not None and max_age is None:
            max_age = self.agent.driver.aggregates.max_age_for_precision(
                precision)
        now = float(now) if now is not None \
            else float(self.agent.clock())
        try:
            state = self._state_for(plan, now, max_age)
        except AggregationUnsupported:
            # Discovered dynamically (e.g. a matched element with
            # delegated descendants): same dichotomy as the static
            # check -- naive path where one exists.
            with self._lock:
                self.stats["unsupported_queries"] += 1
            if plan.shape in ("count", "sum"):
                return False, None
            raise
        except AggregationUnavailable as exc:
            with self._lock:
                self.stats["fallbacks"] += 1
            if plan.shape in ("count", "sum"):
                return False, None
            raise NetError(
                f"aggregate rollup unavailable for {plan.shape}(): {exc}"
            ) from exc
        partial, _data_ts = collapse(state, now)
        with self._lock:
            self.stats["answers"] += 1
        return True, partial.finalize(plan.shape)

    def _plan(self, query):
        try:
            canon = canonicalize(query, buckets=self.config.buckets)
        except Exception:
            return None
        ast = canon.bucket_ast
        if not isinstance(ast, FunctionCall) or ast.name not in SHAPES:
            return None
        supported = (
            len(ast.arguments) == 1
            and isinstance(ast.arguments[0], LocationPath)
            and ast.arguments[0].absolute
        )
        problem = None if supported else "argument is not an absolute path"
        inner = ast.arguments[0] if supported else None
        anchor = _as_path(extract_id_path(inner)) if supported else ()
        if problem is None:
            problem = self._support_problem(inner, anchor)
        if problem is not None:
            with self._lock:
                self.stats["unsupported_queries"] += 1
            if ast.name in ("count", "sum"):
                return None  # the evaluator's own shapes: naive path
            raise AggregationUnsupported(
                f"{ast.name}() not answerable hierarchically: {problem}")
        tolerance = canon.min_tolerance
        if tolerance is None:
            bucket_bound = None
        elif self.config.buckets is not None:
            bucket_bound = self.config.buckets.ceiling(tolerance)
        else:
            bucket_bound = tolerance
        return _Plan(ast.name, inner, inner.unparse(), anchor,
                     tolerance, bucket_bound)

    def _support_problem(self, inner, anchor):
        """Why *inner* is outside the rollup algebra, or ``None``.

        The algebra needs every step to be statically routable through
        IDable frontiers: child axes with name tests, id pins anywhere,
        and freshness predicates **only on the final step** -- an
        intermediate consistency predicate would have to be evaluated
        on a delegated subtree's stub, where timestamps are not
        maintained.  A final attribute step is allowed (values live on
        the owning element's site).
        """
        if not anchor:
            return "no IDable anchor (pin at least the root id)"
        steps = inner.steps
        last = len(steps) - 1
        for index, step in enumerate(steps):
            if step.axis == "attribute":
                if index != last:
                    return "attribute step before the end of the path"
            elif step.axis != "child":
                return f"unsupported axis {step.axis!r}"
            if not isinstance(step.node_test, NameTest):
                return "unsupported node test"
            for predicate in step.predicates:
                for conjunct in _conjuncts(predicate):
                    refs = classify_predicate(conjunct)
                    if refs <= frozenset({REF_ID}):
                        continue
                    if index == last and \
                            refs == frozenset({REF_CONSISTENCY}):
                        continue
                    return "unsupported predicate"
        return None

    # ------------------------------------------------------------------
    # Merge-state acquisition (summary -> rollup -> wire)
    # ------------------------------------------------------------------
    def _state_for(self, plan, now, max_age):
        key = summary_key(plan.anchor, plan.inner)
        serve_bound = max_age if max_age is not None else plan.tolerance
        entry = self.summaries.lookup(key, now, max_age=serve_bound,
                                      tolerance=plan.tolerance)
        if entry is not None:
            return entry.value
        state = self._compute_state(plan.anchor, plan.inner,
                                    plan.inner_source, plan.bucket_bound,
                                    now)
        self.summaries.store(key, state, now, tolerance=plan.bucket_bound)
        return state

    def _compute_state(self, region, inner, inner_source, bound, now):
        database = self.agent.database
        element = database.find(region)
        if element is not None and get_status(element) is Status.OWNED:
            return self._local_rollup(region, element, inner,
                                      inner_source, bound, now)
        return self._remote_partial(region, inner_source, bound, now)

    def _local_rollup(self, region, region_el, inner, inner_source,
                      bound, now):
        """Roll up *region* here: owned matches + frontier partials."""
        database = self.agent.database
        matches = _EVALUATOR.evaluate(inner, database.root, now=now)
        partial = Partial()
        data_ts = None
        counted = 0
        for node in matches:
            element = node.owner if isinstance(node, AttributeRef) else node
            anchor_el = self._idable_anchor(element)
            if anchor_el is None or \
                    not self._owned_chain(region_el, anchor_el):
                continue
            if not self._value_complete(element):
                raise AggregationUnsupported(
                    "a matched element has delegated IDable descendants; "
                    "its string-value is not local")
            partial.add(to_number(node_string_value(node)))
            counted += 1
            stamp = get_timestamp(anchor_el)
            if stamp is not None:
                data_ts = stamp if data_ts is None else min(data_ts, stamp)
        state = state_of(region, partial,
                         data_ts if data_ts is not None else now)
        with self._lock:
            self.stats["rollups"] += 1
            self.stats["rollup_matches"] += counted
        for frontier in self._frontiers(region, region_el, inner):
            child_state = self._remote_partial(frontier, inner_source,
                                               bound, now)
            state = merge_states(state, child_state)
        return state

    def _idable_anchor(self, element):
        """The nearest IDable ancestor-or-self (id-bearing element)."""
        node = element
        while node is not None and "id" not in node.attrib:
            node = node.parent
        return node

    def _owned_chain(self, region_el, anchor_el):
        """Whether every IDable node from *anchor_el* up to *region_el*
        is owned here -- the guard that keeps a locally cached copy of
        a delegated subtree out of the local partial (its owner will be
        asked as a frontier; counting both would double-count)."""
        node = anchor_el
        while node is not None:
            if "id" in node.attrib and \
                    get_status(node) is not Status.OWNED:
                return False
            if node is region_el:
                return True
            node = node.parent
        return False

    def _value_complete(self, element):
        """Whether *element*'s string-value is entirely local: no
        IDable descendant (at any depth) is delegated elsewhere."""
        stack = list(idable_children(element))
        while stack:
            node = stack.pop()
            if get_status(node) is not Status.OWNED:
                return False
            stack.extend(idable_children(node))
        return True

    def _frontiers(self, region, region_el, inner):
        """The unowned IDable nodes under *region* the inner path can
        reach -- each becomes one partial-aggregate subquery."""
        steps = inner.steps
        elem_depth = len(steps)
        if steps and steps[-1].axis == "attribute":
            elem_depth -= 1
        frontiers = []

        def visit(element, path):
            for child in idable_children(element):
                child_path = path + (node_id(child),)
                depth = len(child_path)
                if depth > elem_depth:
                    continue
                if get_status(child) is Status.OWNED:
                    if depth < elem_depth:
                        visit(child, child_path)
                    continue
                if self._reaches(steps, child_path, len(region)):
                    frontiers.append(child_path)

        visit(region_el, _as_path(region))
        return frontiers

    def _reaches(self, steps, child_path, anchor_len):
        for depth in range(anchor_len, len(child_path)):
            step = steps[depth]
            tag, identifier = child_path[depth]
            name = step.node_test.name
            if name != "*" and name != tag:
                return False
            pinned = single_id_value(step)
            if pinned is not None and pinned != identifier:
                return False
        return True

    # ------------------------------------------------------------------
    # The wire: ask a frontier's owner, serve a parent's ask
    # ------------------------------------------------------------------
    def _resolve_owner(self, region):
        from repro.net.errors import NameNotFound

        name = self.agent.resolver.server.name_for(region)
        try:
            target, _hops = self.agent.resolver.resolve(name)
        except NameNotFound:
            return None
        return target

    def _remote_partial(self, region, inner_source, bound, now):
        """One frontier's collapsed merge-state, fetched from its owner.

        Breaker-gated like ordinary dispatch.  A DNS-retired region
        contributes an empty state (the node no longer exists -- the
        transient inconsistency Section 4 accepts); every other failure
        raises :class:`AggregationUnavailable` and the whole ask
        degrades to the naive path.
        """
        target = self._resolve_owner(region)
        if target is None:
            return {}
        if target == self.agent.site_id:
            raise AggregationUnavailable(
                f"DNS says {self.agent.site_id!r} owns {region} but the "
                "region is not stored as owned here")
        health = self.agent.health
        if health is not None and not health.allow(target):
            raise AggregationUnavailable(
                f"circuit open for site {target!r}")
        message = PartialAggregateRequest(
            region, inner_source, bound=bound, now=now,
            sender=self.agent.site_id)
        try:
            reply = self.agent.network.request(
                self.agent.site_id, target, message)
        except (OSError, NetError) as exc:
            if health is not None:
                health.record_failure(target)
            with self._lock:
                self.stats["partial_failures"] += 1
            raise AggregationUnavailable(
                f"site {target!r} unreachable: {exc}") from exc
        if health is not None:
            health.record_success(target)
        if isinstance(reply, ErrorMessage):
            with self._lock:
                self.stats["partial_failures"] += 1
            raise AggregationUnavailable(
                f"site {target!r} declined: {reply.code}")
        if not isinstance(reply, PartialAggregateAnswer):
            with self._lock:
                self.stats["partial_failures"] += 1
            raise AggregationUnavailable(
                f"site {target!r} replied {type(reply).__name__}")
        with self._lock:
            self.stats["partials_fetched"] += 1
        return reply.state

    def answer_partial(self, message):
        """Serve one :class:`PartialAggregateRequest` (the OA handler).

        Summary first (the parent's bucketed bound is both the serving
        bound and the stored tolerance), rollup on miss -- recursing
        into this site's own frontiers -- and the reply carries the
        state collapsed to one entry keyed by the asked region, so
        state maps stay fan-out-sized all the way up.
        """
        now = float(message.now) if message.now is not None \
            else float(self.agent.clock())
        bound = message.bound
        region = _as_path(message.region)
        try:
            inner = xpath_parser.parse(message.query)
        except Exception as exc:
            return ErrorMessage(message.message_id, code="agg-bad-query",
                                detail=str(exc), retryable=False,
                                sender=self.agent.site_id)
        key = summary_key(region, inner)
        entry = self.summaries.lookup(key, now, max_age=bound,
                                      tolerance=bound)
        if entry is not None:
            state = entry.value
        else:
            element = self.agent.database.find(region)
            if element is None or get_status(element) is not Status.OWNED:
                return ErrorMessage(
                    message.message_id, code="agg-not-owned",
                    detail=f"{self.agent.site_id} does not own the region",
                    retryable=False, sender=self.agent.site_id)
            try:
                state = self._local_rollup(region, element, inner,
                                           message.query, bound, now)
            except AggregationUnsupported as exc:
                return ErrorMessage(
                    message.message_id, code="agg-unsupported",
                    detail=str(exc), retryable=False,
                    sender=self.agent.site_id)
            except AggregationUnavailable as exc:
                return ErrorMessage(
                    message.message_id, code="agg-unavailable",
                    detail=str(exc), retryable=True,
                    sender=self.agent.site_id)
            self.summaries.store(key, state, now, tolerance=bound)
        partial, data_ts = collapse(state, now)
        with self._lock:
            self.stats["partials_served"] += 1
        return PartialAggregateAnswer(
            message.message_id, state_of(region, partial, data_ts),
            sender=self.agent.site_id)

    # ------------------------------------------------------------------
    # Derived sensors
    # ------------------------------------------------------------------
    def register_derived(self, identifier, node_path, formula,
                         subscribe=None):
        """Register a formula-defined sensor living at *node_path*.

        The node must already exist in the document (owned here).
        *subscribe* is a ``(query, callback) -> token`` callable --
        typically ``cluster.subscribe`` -- used to watch each dependency
        region through :mod:`repro.net.continuous`; the sensor
        re-evaluates whenever covered data changes.  Returns the
        :class:`~repro.agg.derived.DerivedSensor` after its first
        evaluation.
        """
        from repro.agg.derived import DerivedSensor

        sensor = DerivedSensor(identifier, node_path, formula)
        element = self.agent.database.find(sensor.node_path)
        if element is None or get_status(element) is not Status.OWNED:
            raise CoreError(
                f"derived sensor node {sensor.node_path} is not owned "
                f"at site {self.agent.site_id!r}")
        self.derived[identifier] = sensor
        if subscribe is not None:
            for query in sensor.dependency_queries():
                def _on_change(_results, _identifier=identifier):
                    self.refresh_derived(_identifier)

                sensor.subscriptions.append(subscribe(query, _on_change))
        self.refresh_derived(identifier)
        return sensor

    def refresh_derived(self, identifier):
        """Re-evaluate one derived sensor and write its value back.

        The write-back mirrors the update handler: apply to the owned
        node, wake continuous queries, re-replicate.  Reentrant calls
        (the write-back itself fires a covering subscription) are
        absorbed by the per-sensor guard.
        """
        sensor = self.derived[identifier]
        if not sensor.begin_refresh():
            return None
        try:
            now = float(self.agent.clock())
            value = sensor.evaluate(
                lambda query: self.agent.answer_scalar(query, now=now))
            self.agent.database.apply_update(
                sensor.node_path, values={"value": sensor.render(value)})
            sensor.last_value = value
            with self._lock:
                self.stats["derived_refreshes"] += 1
            self.agent.continuous.on_update(sensor.node_path)
            if self.agent.replication is not None:
                self.agent.replication.note_update(sensor.node_path)
            return value
        except Exception:
            with self._lock:
                self.stats["derived_refresh_errors"] += 1
            raise
        finally:
            sensor.end_refresh()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self):
        """Aggregation counters for the metrics registry / EXPLAIN."""
        with self._lock:
            counters = dict(self.stats)
        summary = self.summaries.metrics()
        asked = summary["hits"] + summary["misses"]
        counters["summary"] = summary
        counters["summary_hit_ratio"] = (
            round(summary["hits"] / asked, 6) if asked else 0.0)
        counters["enabled"] = self.enabled
        counters["derived_sensors"] = sorted(self.derived)
        return counters
