"""Durability for organizing agents: WAL, checkpoints, recovery.

The paper's consistency story assumes an OA's owned fragment outlives
the OA process; this package makes that true.  Every fragment mutation
a site database performs (sensor updates, cache fills, evictions,
ownership changes, schema evolution) is journalled to a per-site
append-only :class:`~repro.durability.wal.WriteAheadLog` with
CRC-framed records and batched fsyncs; periodic
:mod:`~repro.durability.checkpoint` snapshots bound replay length; and
:class:`~repro.durability.manager.DurabilityManager` restores a killed
site from checkpoint + log replay, byte-identically to a site that
never died.
"""

from repro.durability.checkpoint import (
    latest_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.durability.manager import (
    DurabilityConfig,
    DurabilityError,
    DurabilityManager,
    apply_record,
    partition_fingerprint,
)
from repro.durability.wal import WalRecord, WriteAheadLog

__all__ = [
    "DurabilityConfig",
    "DurabilityError",
    "DurabilityManager",
    "WriteAheadLog",
    "WalRecord",
    "apply_record",
    "partition_fingerprint",
    "write_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
]
