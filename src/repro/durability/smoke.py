"""Durability smoke check: kill and recover a TCP site, end to end.

``python -m repro.durability.smoke`` (needs ``PYTHONPATH=src:.``)
stands up a three-site TCP deployment twice over the same workload —
once as a *victim* whose mid-tier site is killed mid-workload and
restarted from its WAL + checkpoint, once as a never-killed *control*
— and asserts

* the victim's recovered partition is byte-identical to the
  control's (``partition_fingerprint``), and
* the post-recovery query suite answers byte-identically.

The victim's durability directory (WAL + checkpoints, as left after
the run) and a JSON summary of the recovery counters are written
under ``--artifacts`` (default ``durability-smoke/``) so CI can
archive what recovery actually consumed.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile


def _document():
    from repro.xmlkit import Element

    root = Element("region", attrib={"id": "R"})
    for group_index in range(2):
        group = Element("group", attrib={"id": f"g{group_index}"})
        root.append(group)
        for sensor_index in range(3):
            sensor = Element("sensor",
                             attrib={"id": f"s{sensor_index}"})
            sensor.append(Element("value", text="0"))
            group.append(sensor)
    return root


def _plan():
    from repro.core import PartitionPlan

    return PartitionPlan({
        "top": [(("region", "R"),)],
        "mid": [(("region", "R"), ("group", "g0"))],
        "leaf": [(("region", "R"), ("group", "g1"))],
    })


QUERIES = [
    "/region[@id='R']/group[@id='g0']/sensor[@id='s1']/value",
    "/region[@id='R']/group[@id='g0']/sensor",
    "/region[@id='R']/group[@id='g1']/sensor[@id='s2']",
]

G0_S1 = (("region", "R"), ("group", "g0"), ("sensor", "s1"))
G0_S2 = (("region", "R"), ("group", "g0"), ("sensor", "s2"))


def _run(directory, kill):
    from repro.durability import DurabilityConfig, partition_fingerprint
    from repro.net.tcpruntime import TcpCluster
    from repro.xmlkit import serialize

    config = DurabilityConfig(directory=directory, sync_every=4,
                              checkpoint_interval=3)
    cluster = TcpCluster(_document(), _plan(), durability=config,
                         clock=lambda: 1000.0)
    try:
        mid = cluster.cluster.agents["mid"].database
        mid.apply_update(G0_S1, values={"value": "7"})
        cluster.cluster.query(QUERIES[0])  # spread cached copies
        mid.apply_update(G0_S2, values={"value": "9"})

        recovery = None
        if kill:
            cluster.kill_site("mid")
            agent = cluster.restart_site("mid")
            recovery = agent.durability.counters()

        cluster.cluster.agents["mid"].database.apply_update(
            G0_S1, values={"value": "11"})
        answers = {}
        for query in QUERIES:
            results, _, outcome = cluster.cluster.query(query)
            if not outcome.complete:
                raise SystemExit(f"FAIL: incomplete answer for {query}")
            answers[query] = [
                serialize(r, sort_attributes=True, use_cache=False)
                for r in results]
        fingerprints = {
            site: partition_fingerprint(agent.database)
            for site, agent in cluster.cluster.agents.items()}
        return answers, fingerprints, recovery
    finally:
        cluster.close()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="kill-and-recover TCP smoke check")
    parser.add_argument("--artifacts", default="durability-smoke",
                        help="directory for WAL/checkpoint artifacts "
                             "and the recovery summary")
    args = parser.parse_args(argv)

    scratch = tempfile.mkdtemp(prefix="durability-smoke-")
    victim_dir = os.path.join(scratch, "victim")
    control_dir = os.path.join(scratch, "control")
    try:
        victim_answers, victim_fps, recovery = _run(victim_dir, kill=True)
        control_answers, control_fps, _ = _run(control_dir, kill=False)

        problems = []
        if victim_answers != control_answers:
            problems.append("post-recovery answers differ from control")
        for site in control_fps:
            if victim_fps[site] != control_fps[site]:
                problems.append(f"partition fingerprint differs: {site}")
        if not recovery or recovery["recoveries"] != 1:
            problems.append("victim did not record exactly one recovery")

        os.makedirs(args.artifacts, exist_ok=True)
        # The victim's durability directory as the run left it --
        # what a real recovery would read.
        kept = os.path.join(args.artifacts, "victim-durability")
        shutil.rmtree(kept, ignore_errors=True)
        shutil.copytree(victim_dir, kept)
        summary_path = os.path.join(args.artifacts, "recovery.json")
        with open(summary_path, "w", encoding="utf-8") as handle:
            json.dump({"recovery_counters": recovery,
                       "queries": QUERIES,
                       "sites": sorted(control_fps),
                       "byte_identical": not problems},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")

        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print(f"OK: site 'mid' killed and recovered "
              f"({recovery['last_recovery_replayed']} records replayed, "
              f"{recovery['replay_skipped']} covered by the checkpoint); "
              f"answers and partitions byte-identical to control.")
        print(f"Artifacts in {args.artifacts}/")
        return 0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
