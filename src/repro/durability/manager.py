"""Per-site durability: journal hooks, auto-checkpoint, recovery.

A :class:`DurabilityManager` sits between one site's
:class:`~repro.core.database.SensorDatabase` and disk.  Attached to a
database it receives every mutation record the database (and the
schema-evolution helpers) emit through the ``journal`` hook, appends
them to the site's :class:`~repro.durability.wal.WriteAheadLog`, and
every ``checkpoint_interval`` records snapshots the whole partition
via :mod:`~repro.durability.checkpoint` and rotates the log.

Recovery (:meth:`DurabilityManager.recover`) is the inverse: load the
newest loadable checkpoint, replay the WAL records past it in LSN
order, truncate any torn tail, and optionally re-validate cached
entries against a freshness bound -- a restarted site must not serve
cache contents as fresh that aged past their bound while it was dead.
Replay is idempotent at the log level: the database carries an
applied-LSN watermark and :func:`apply_record` skips any record at or
below it, so a crash *during* recovery (or a record that both the
checkpoint and the log cover) cannot double-apply a mutation.
"""

import os
import tempfile
import threading
import time

from repro.core.errors import CacheError, CoreError
from repro.core.idable import id_path_of
from repro.core.status import Status, get_status, get_timestamp, set_timestamp
from repro.durability.checkpoint import (
    latest_checkpoint,
    prune_checkpoints,
    write_checkpoint,
)
from repro.durability.wal import WriteAheadLog
from repro.obs.tracing import TRACER
from repro.xmlkit.parser import parse_fragment
from repro.xmlkit.serializer import serialize


class DurabilityError(Exception):
    """Durability subsystem misuse or unrecoverable state."""


def partition_fingerprint(database):
    """The canonical serialized form of one site's partition.

    Sorted attributes, memo bypassed: two databases holding the same
    information produce byte-identical fingerprints regardless of
    attribute insertion order or cache state.  This is the equality
    the recovery tests (and the acceptance criterion) are stated in.
    """
    return serialize(database.root, sort_attributes=True, use_cache=False)


class DurabilityConfig:
    """Tunables for the per-site durability managers.

    ``enabled``
        ``False`` makes the whole subsystem a no-op -- no directory is
        touched, agents run exactly as before this subsystem existed.
    ``directory``
        root directory; each site journals under ``<directory>/<site>``.
        ``None`` creates a fresh temporary directory on first use.
    ``sync_every``
        fsync the WAL every N appended records (group commit); ``0``
        never fsyncs (flush-to-OS only -- fine for tests/benchmarks).
    ``checkpoint_interval``
        snapshot the partition and rotate the log every N records;
        ``0`` disables automatic checkpoints (explicit
        :meth:`DurabilityManager.checkpoint` calls only).
    ``keep_checkpoints``
        how many snapshot generations to retain.
    ``revalidate_max_age``
        on recovery, evict cached (``complete``) entries whose data
        timestamp is older than this many seconds; ``None`` restores
        the cache verbatim.
    """

    def __init__(self, enabled=True, directory=None, sync_every=64,
                 checkpoint_interval=256, keep_checkpoints=2,
                 revalidate_max_age=None):
        self.enabled = enabled
        self.directory = directory
        self.sync_every = sync_every
        self.checkpoint_interval = checkpoint_interval
        self.keep_checkpoints = keep_checkpoints
        self.revalidate_max_age = revalidate_max_age
        self._lock = threading.Lock()

    def resolved_directory(self):
        """The root directory, creating a temporary one on first use."""
        with self._lock:
            if self.directory is None:
                self.directory = tempfile.mkdtemp(prefix="repro-durability-")
            return self.directory

    def site_directory(self, site_id):
        path = os.path.join(self.resolved_directory(), str(site_id))
        os.makedirs(path, exist_ok=True)
        return path

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return (f"DurabilityConfig({state}, dir={self.directory!r}, "
                f"sync_every={self.sync_every}, "
                f"checkpoint_interval={self.checkpoint_interval})")


# ----------------------------------------------------------------------
# Record replay: one handler per record kind.  Handlers tolerate
# missing targets (a later record may have removed them); exactly-once
# application is the LSN watermark's job (see apply_record).
# ----------------------------------------------------------------------
def _path_from(raw):
    return tuple((entry[0], entry[1]) for entry in raw)


def _replay_update(database, record):
    element = database.apply_update(
        _path_from(record["path"]),
        attributes=record.get("attributes") or None,
        values=record.get("values") or None,
        require_owned=False,
        timestamp=record["ts"],
    )
    return element


def _replay_fragment(database, record):
    database.store_fragment(parse_fragment(record["xml"]))


def _replay_evict(database, record):
    path = _path_from(record["path"])
    element = database.find(path)
    if element is None or get_status(element) is Status.OWNED:
        return  # already gone with an ancestor, or re-owned later
    if record.get("keep_ids") and \
            get_status(element) is Status.ID_COMPLETE:
        return
    if not record.get("keep_ids") and \
            get_status(element) is Status.INCOMPLETE:
        return
    try:
        database.evict(path, keep_ids=bool(record.get("keep_ids")))
    except CacheError:
        pass  # an owned descendant appeared later in the log


def _replay_evict_all(database, record):
    database.evict_all_cached()


def _replay_mark_owned(database, record):
    element = database.find(_path_from(record["path"]))
    if element is None or get_status(element) is Status.OWNED:
        return
    database.mark_owned(_path_from(record["path"]))


def _replay_release_ownership(database, record):
    element = database.find(_path_from(record["path"]))
    if element is None or get_status(element) is not Status.OWNED:
        return
    database.release_ownership(_path_from(record["path"]))


def _replay_add_node(database, record):
    from repro.core.evolution import add_idable_child

    parent_path = _path_from(record["parent"])
    node_path = parent_path + ((record["tag"], record["id"]),)
    element = database.find(node_path)
    if element is None:
        element = add_idable_child(
            database, parent_path, record["tag"], record["id"],
            attributes=record.get("attributes") or None,
            values=record.get("values") or None,
        )
    # The original clock readings, not the replay-time ones.
    set_timestamp(element, record["node_ts"])
    parent = database.find(parent_path)
    if parent is not None:
        set_timestamp(parent, record["parent_ts"])


def _replay_remove_node(database, record):
    from repro.core.evolution import remove_idable_child

    path = _path_from(record["path"])
    if database.find(path) is not None:
        remove_idable_child(database, path)
    parent = database.find(path[:-1])
    if parent is not None:
        set_timestamp(parent, record["parent_ts"])


def _replay_rename_field(database, record):
    from repro.core.evolution import rename_field

    path = _path_from(record["path"])
    element = database.find(path)
    if element is None:
        return
    old = element.child(record["old"])
    if old is not None and old.id is None:
        rename_field(database, path, record["old"], record["new"])
    set_timestamp(element, record["ts"])


_REPLAYERS = {
    "update": _replay_update,
    "fragment": _replay_fragment,
    "evict": _replay_evict,
    "evict_all": _replay_evict_all,
    "mark_owned": _replay_mark_owned,
    "release_ownership": _replay_release_ownership,
    "add_node": _replay_add_node,
    "remove_node": _replay_remove_node,
    "rename_field": _replay_rename_field,
}


#: Attribute on the database tracking the highest LSN applied to it.
#: Idempotence is enforced here, at the log level, not per record
#: kind: a state-dependent mutation such as ``rename_field`` cannot
#: tell "already replayed" apart from "legitimately journalled again"
#: once later records have recreated the old field name, but the LSN
#: watermark can.
_APPLIED_LSN = "_durability_applied_lsn"


def apply_record(database, record):
    """Apply one WAL record to *database*, at most once per LSN.

    Records whose ``lsn`` is at or below the database's applied-LSN
    watermark are skipped (returns ``False``), so re-running a replay
    -- a recovery restarted after a second crash, or an operator
    replaying a log by hand -- never double-applies a mutation.
    Unknown kinds raise -- a log written by a newer build must fail
    loudly rather than silently skip mutations.
    """
    try:
        replay = _REPLAYERS[record["kind"]]
    except KeyError:
        raise DurabilityError(
            f"unknown WAL record kind {record.get('kind')!r} "
            f"(lsn {record.get('lsn')})") from None
    lsn = record.get("lsn")
    if lsn is not None:
        if lsn <= getattr(database, _APPLIED_LSN, -1):
            return False
        setattr(database, _APPLIED_LSN, lsn)
    replay(database, record)
    return True


class DurabilityManager:
    """One site's journal, checkpointer and recovery path."""

    def __init__(self, config, site_id, clock=None):
        if not config.enabled:
            raise DurabilityError(
                "DurabilityManager needs an enabled DurabilityConfig "
                "(disabled durability means no manager at all)")
        self.config = config
        self.site_id = site_id
        self.clock = clock or time.time
        self.directory = config.site_directory(site_id)
        self.database = None
        self._lock = threading.RLock()
        self._records_since_checkpoint = 0
        self.stats = {
            "records_appended": 0,
            "checkpoints_written": 0,
            "auto_checkpoints": 0,
            "recoveries": 0,
            "records_replayed": 0,
            "replay_skipped": 0,
            "torn_bytes_dropped": 0,
            "checkpoints_skipped": 0,
            "cache_entries_checked": 0,
            "cache_entries_expired": 0,
            "last_recovery_seconds": 0.0,
            "last_recovery_replayed": 0,
        }
        checkpoint_lsn, _root, _skipped = latest_checkpoint(self.directory)
        self._wal = WriteAheadLog(
            os.path.join(self.directory, "wal.log"),
            sync_every=config.sync_every,
            start_lsn=checkpoint_lsn,
        )
        self.stats["torn_bytes_dropped"] += \
            self._wal.stats["torn_bytes_dropped"]

    # ------------------------------------------------------------------
    # The journal hook (called by the database on every mutation)
    # ------------------------------------------------------------------
    def attach(self, database):
        """Start journalling *database*'s mutations into the WAL.

        A site attaching for the first time (no checkpoint on disk yet)
        snapshots its initial partition immediately: recovery always
        starts from a checkpoint, so the base state must be on disk
        before the first journalled mutation.
        """
        with self._lock:
            self.database = database
            database.journal = self.record
            if latest_checkpoint(self.directory)[1] is None:
                self._checkpoint_locked()

    def record(self, record):
        """Append one mutation record; auto-checkpoint on schedule."""
        with self._lock:
            self._wal.append(record)
            self.stats["records_appended"] += 1
            self._records_since_checkpoint += 1
            interval = self.config.checkpoint_interval
            if interval and self._records_since_checkpoint >= interval:
                self._checkpoint_locked()
                self.stats["auto_checkpoints"] += 1

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self):
        """Snapshot the attached database and rotate the log."""
        with self._lock:
            if self.database is None:
                raise DurabilityError(
                    f"site {self.site_id!r}: no database attached")
            return self._checkpoint_locked()

    def _checkpoint_locked(self):
        lsn = self._wal.last_lsn
        with TRACER.span("durability-checkpoint", site=self.site_id,
                         tags={"lsn": lsn}):
            self._wal.flush(sync=True)
            path = write_checkpoint(self.directory, self.database.root,
                                    lsn, site_id=self.site_id,
                                    when=self.clock())
            self._wal.reset()
            prune_checkpoints(self.directory, self.config.keep_checkpoints)
        self._records_since_checkpoint = 0
        self.stats["checkpoints_written"] += 1
        return path

    def flush(self, sync=True):
        """Drain the WAL to disk (the graceful-shutdown step)."""
        with self._lock:
            self._wal.flush(sync=sync)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def has_state(self):
        """Whether this site left anything behind to recover from."""
        has_checkpoint = latest_checkpoint(self.directory)[1] is not None
        return has_checkpoint or bool(self._wal.recovered_records) or \
            self._wal.stats["appends"] > 0

    def recover(self, clock=None, site_id=None):
        """Rebuild the site database from checkpoint + log replay.

        Returns a fresh :class:`~repro.core.database.SensorDatabase`
        (not yet attached -- callers attach after recovery so replay
        itself is never re-journalled).
        """
        from repro.core.database import SensorDatabase

        started = time.perf_counter()
        site = site_id if site_id is not None else self.site_id
        with self._lock, TRACER.span("durability-recover", site=site):
            checkpoint_lsn, root, skipped = latest_checkpoint(self.directory)
            self.stats["checkpoints_skipped"] += skipped
            if root is None and not self._wal.recovered_records:
                raise DurabilityError(
                    f"site {site!r}: nothing to recover "
                    f"(no checkpoint, empty log)")
            if root is None:
                raise DurabilityError(
                    f"site {site!r}: log records without any checkpoint; "
                    "the initial partition snapshot is missing")
            database = SensorDatabase(root, clock=clock or self.clock,
                                      site_id=site)
            setattr(database, _APPLIED_LSN, checkpoint_lsn)
            replayed = skipped_records = 0
            with TRACER.span("durability-replay", site=site,
                             tags={"records":
                                   len(self._wal.recovered_records)}):
                for record in self._wal.recovered_records:
                    if record.lsn <= checkpoint_lsn:
                        skipped_records += 1
                        continue
                    apply_record(database, record)
                    replayed += 1
            expired = self._revalidate_cache(database)
            self.stats["recoveries"] += 1
            self.stats["records_replayed"] += replayed
            self.stats["replay_skipped"] += skipped_records
            self.stats["cache_entries_expired"] += expired
            self.stats["last_recovery_replayed"] = replayed
            self.stats["last_recovery_seconds"] = \
                time.perf_counter() - started
            self._records_since_checkpoint = len(
                [r for r in self._wal.recovered_records
                 if r.lsn > checkpoint_lsn])
            return database

    def _revalidate_cache(self, database):
        """Demote cached entries that aged past the freshness bound.

        A site that was dead for an hour must not present cache
        contents cached an hour ago as if they were fresh; with a
        configured ``revalidate_max_age`` every ``complete`` (cached,
        non-owned) node older than the bound is evicted back to a
        stub, exactly as the cache-consistency machinery would have
        done for a query with that freshness requirement.
        """
        max_age = self.config.revalidate_max_age
        if max_age is None:
            return 0
        now = (database.clock or self.clock)()
        stale = []
        for element in list(database.iter_idable()):
            if get_status(element) is not Status.COMPLETE:
                continue
            self.stats["cache_entries_checked"] += 1
            timestamp = get_timestamp(element)
            if timestamp is None or now - timestamp > max_age:
                stale.append(tuple(id_path_of(element)))
        expired = 0
        for path in stale:
            element = database.find(path)
            if element is None or \
                    get_status(element) is not Status.COMPLETE:
                continue  # evicted along with an ancestor already
            try:
                database.evict(path)
                expired += 1
            except (CacheError, CoreError):
                continue  # protects an owned descendant; keep it
        return expired

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, final_checkpoint=False):
        """Graceful shutdown: optional snapshot, then drain and close."""
        with self._lock:
            if final_checkpoint and self.database is not None and \
                    not self._wal.closed:
                self._checkpoint_locked()
            self._wal.close(sync=True)
            if self.database is not None and \
                    self.database.journal == self.record:
                self.database.journal = None

    def abort(self):
        """Crash-style teardown: no flush decisions, no checkpoint.

        What already reached the OS survives (every append is flushed),
        which is exactly the state a killed process leaves behind.
        """
        with self._lock:
            self._wal.close(sync=False)
            if self.database is not None and \
                    self.database.journal == self.record:
                self.database.journal = None
            self.database = None

    def counters(self):
        """Snapshot for the metrics registry."""
        with self._lock:
            out = dict(self.stats)
            out["wal_bytes"] = self._wal.size_bytes() \
                if not self._wal.closed else 0
            out["wal_last_lsn"] = self._wal.last_lsn
            for key in ("flushes", "fsyncs"):
                out[f"wal_{key}"] = self._wal.stats[key]
            return out

    def __repr__(self):
        return (f"DurabilityManager(site={self.site_id!r}, "
                f"dir={self.directory!r}, "
                f"last_lsn={self._wal.last_lsn})")
