"""The per-site write-ahead log: CRC-framed records, batched fsyncs.

One log file holds a sequence of frames::

    +----------------+----------------+------------------------+
    | length (>I)    | crc32 (>I)     | payload (JSON, UTF-8)  |
    +----------------+----------------+------------------------+

The payload is one mutation record (a JSON object carrying ``lsn``,
``kind`` and the mutation's arguments); the CRC covers the payload
bytes only, so a frame whose length or checksum does not match is a
*torn tail* -- the prefix of a record the process was writing when it
died.  Opening a log scans it, keeps every valid record, and truncates
the file back to the last valid frame boundary, which makes an append
after a crash safe (no garbage between old and new records).

Durability policy: every append flushes to the OS (an acknowledged
mutation survives the *process*); ``sync_every`` batches the expensive
``fsync`` so surviving an *OS* crash costs one disk flush per N
records instead of per record (group commit).  ``sync_every=0``
disables fsync entirely (tests, benchmarks); ``flush(sync=True)``
forces one.
"""

import json
import os
import struct
import threading
import zlib

_FRAME = struct.Struct(">II")

#: Frames larger than this are treated as torn/corrupt rather than
#: honoured -- a bit-flipped length field must not make the scanner
#: try to allocate gigabytes.
MAX_RECORD_BYTES = 256 * 1024 * 1024


class WalError(Exception):
    """A write-ahead log problem that is not a routine torn tail."""


class WalRecord(dict):
    """One replayed mutation record (a dict with an ``lsn`` shortcut)."""

    @property
    def lsn(self):
        return self["lsn"]


def _scan_frames(path):
    """``(records, valid_end_offset, torn_bytes)`` for the log at *path*.

    Reads frames until EOF or the first frame that cannot be a record
    (short header, short payload, CRC mismatch, oversized length,
    undecodable JSON).  Everything after the last valid frame is the
    torn tail.
    """
    records = []
    valid_end = 0
    try:
        size = os.path.getsize(path)
    except OSError:
        return records, 0, 0
    with open(path, "rb") as handle:
        while True:
            header = handle.read(_FRAME.size)
            if len(header) < _FRAME.size:
                break
            length, crc = _FRAME.unpack(header)
            if length > MAX_RECORD_BYTES:
                break
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break
            if not isinstance(record, dict) or "lsn" not in record:
                break
            records.append(WalRecord(record))
            valid_end = handle.tell()
    return records, valid_end, size - valid_end


class WriteAheadLog:
    """An append-only, crash-tolerant record log (thread-safe).

    Opening scans the existing file, truncates any torn tail and
    continues the LSN sequence after the last valid record (or after
    *start_lsn*, whichever is higher -- the caller passes the latest
    checkpoint's LSN so numbering survives log rotation).  The records
    found at open time are kept on :attr:`recovered_records` for the
    recovery path to replay.
    """

    def __init__(self, path, sync_every=64, start_lsn=0):
        self.path = path
        self.sync_every = max(0, int(sync_every))
        self.stats = {
            "appends": 0,
            "flushes": 0,
            "fsyncs": 0,
            "torn_bytes_dropped": 0,
            "resets": 0,
        }
        self._lock = threading.Lock()
        self._unsynced = 0
        records, valid_end, torn = _scan_frames(path)
        if torn:
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
            self.stats["torn_bytes_dropped"] += torn
        self.recovered_records = records
        last_lsn = records[-1].lsn if records else 0
        self._next_lsn = max(int(start_lsn), last_lsn) + 1
        self._handle = open(path, "ab")

    # ------------------------------------------------------------------
    @property
    def next_lsn(self):
        return self._next_lsn

    @property
    def last_lsn(self):
        return self._next_lsn - 1

    def append(self, record):
        """Frame and write one record; returns its LSN.

        The record is flushed to the OS before the call returns (the
        in-process buffer never holds acknowledged mutations); fsync
        happens every ``sync_every`` appends.
        """
        with self._lock:
            if self._handle is None:
                raise WalError(f"log {self.path} is closed")
            lsn = self._next_lsn
            payload = dict(record)
            payload["lsn"] = lsn
            data = json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
            if len(data) > MAX_RECORD_BYTES:
                raise WalError(
                    f"record of {len(data)} bytes exceeds the frame limit")
            self._handle.write(_FRAME.pack(len(data), zlib.crc32(data)))
            self._handle.write(data)
            self._handle.flush()
            self._next_lsn = lsn + 1
            self.stats["appends"] += 1
            self.stats["flushes"] += 1
            self._unsynced += 1
            if self.sync_every and self._unsynced >= self.sync_every:
                self._fsync_locked()
            return lsn

    def _fsync_locked(self):
        os.fsync(self._handle.fileno())
        self.stats["fsyncs"] += 1
        self._unsynced = 0

    def flush(self, sync=True):
        """Flush buffered frames; with *sync* also fsync to disk."""
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            self.stats["flushes"] += 1
            if sync and self._unsynced:
                self._fsync_locked()

    def size_bytes(self):
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def reset(self):
        """Empty the log (after a checkpoint captured every record).

        LSN numbering continues -- recovery filters replay by
        ``lsn > checkpoint.lsn``, so numbers must never repeat.
        """
        with self._lock:
            if self._handle is None:
                raise WalError(f"log {self.path} is closed")
            self._handle.close()
            with open(self.path, "wb") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            self._handle = open(self.path, "ab")
            self._unsynced = 0
            self.recovered_records = []
            self.stats["resets"] += 1

    def close(self, sync=True):
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            if sync:
                try:
                    os.fsync(self._handle.fileno())
                    self.stats["fsyncs"] += 1
                except OSError:
                    pass
            self._handle.close()
            self._handle = None

    @property
    def closed(self):
        return self._handle is None

    def __repr__(self):
        return (f"WriteAheadLog({self.path!r}, next_lsn={self._next_lsn}, "
                f"appends={self.stats['appends']})")
