"""Snapshot checkpoints of one site's owned partition.

A checkpoint is the site fragment serialized by the standard
:mod:`repro.xmlkit.serializer` (statuses, timestamps and all), wrapped
in a ``<checkpoint>`` envelope recording the WAL position it covers::

    <checkpoint lsn="42" site="oak" time="1000.0">
      <usRegion id="NE" status="owned" ...>...</usRegion>
    </checkpoint>

Files are written atomically (temp file + fsync + rename + directory
fsync), named ``checkpoint-<lsn padded>.xml`` so the newest sorts
last, and validated on load -- a checkpoint that does not parse is
skipped and recovery falls back to the previous one plus a longer
replay, never to garbage.
"""

import os
import re

from repro.xmlkit.nodes import Element
from repro.xmlkit.parser import parse_fragment
from repro.xmlkit.serializer import serialize

_NAME = re.compile(r"^checkpoint-(\d+)\.xml$")


class CheckpointError(Exception):
    """No usable checkpoint could be written or read."""


def checkpoint_path(directory, lsn):
    return os.path.join(directory, f"checkpoint-{int(lsn):012d}.xml")


def _fsync_directory(directory):
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_checkpoint(directory, root, lsn, site_id=None, when=None):
    """Atomically write the snapshot covering WAL records <= *lsn*.

    Returns the final path.  The envelope is serialized through the
    shared subtree memo, so a checkpoint right after a query re-uses
    the same cached bytes the wire path produced.
    """
    envelope = Element("checkpoint", attrib={"lsn": str(int(lsn))})
    if site_id is not None:
        envelope.set("site", str(site_id))
    if when is not None:
        envelope.set("time", repr(float(when)))
    envelope.append(root.copy())
    text = serialize(envelope)
    final = checkpoint_path(directory, lsn)
    tmp = final + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    _fsync_directory(directory)
    return final


def list_checkpoints(directory):
    """``[(lsn, path)]`` for every checkpoint file, oldest first."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    found = []
    for name in names:
        match = _NAME.match(name)
        if match:
            found.append((int(match.group(1)),
                          os.path.join(directory, name)))
    return sorted(found)


def load_checkpoint(path):
    """``(lsn, root_element)`` from one checkpoint file.

    Raises :class:`CheckpointError` on any corruption -- the caller
    decides whether an older checkpoint can stand in.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        envelope = parse_fragment(text)
    except Exception as exc:
        raise CheckpointError(f"{path}: unreadable: {exc}") from exc
    if envelope.tag != "checkpoint" or envelope.get("lsn") is None:
        raise CheckpointError(f"{path}: not a checkpoint envelope")
    roots = list(envelope.element_children())
    if len(roots) != 1:
        raise CheckpointError(
            f"{path}: expected one fragment root, found {len(roots)}")
    root = roots[0]
    root.detach()
    return int(envelope.get("lsn")), root


def latest_checkpoint(directory):
    """``(lsn, root_element, skipped)`` for the newest *loadable*
    checkpoint, or ``(0, None, skipped)`` when none exists.

    ``skipped`` counts newer checkpoint files that failed to load (a
    crash mid-replace leaves none -- the write is atomic -- but disk
    corruption is still survived by falling back).
    """
    skipped = 0
    for lsn, path in reversed(list_checkpoints(directory)):
        try:
            loaded_lsn, root = load_checkpoint(path)
        except CheckpointError:
            skipped += 1
            continue
        return loaded_lsn, root, skipped
    return 0, None, skipped


def prune_checkpoints(directory, keep):
    """Delete all but the newest *keep* checkpoints; returns #removed."""
    if keep is None or keep < 1:
        return 0
    checkpoints = list_checkpoints(directory)
    removed = 0
    for _lsn, path in checkpoints[:-keep]:
        try:
            os.remove(path)
            removed += 1
        except OSError:
            pass
    return removed
