"""Replication smoke check: kill an owner, serve from replicas, rehydrate.

``python -m repro.replication.smoke`` (needs ``PYTHONPATH=src:.``)
stands up a three-site TCP deployment with ``ReplicationConfig(k=2)``
and **no durability at all**, then walks the full availability loop:

* baseline: every query in the suite answers complete;
* kill the mid-tier owner: every query still answers, byte-identical
  to baseline and annotated ``served_by_replica`` — zero failed
  queries while the owner is down;
* restart the owner: the fragment comes back from peer replicas
  (``site_rehydrations``), since there is no WAL to replay, and the
  suite answers byte-identically again.

A JSON summary of the replication/failover/rehydration counters is
written under ``--artifacts`` (default ``replication-smoke/``) so CI
can archive what failover actually did.
"""

import argparse
import json
import os
import sys


def _document():
    from repro.xmlkit import Element

    root = Element("region", attrib={"id": "R"})
    for group_index in range(2):
        group = Element("group", attrib={"id": f"g{group_index}"})
        root.append(group)
        for sensor_index in range(3):
            sensor = Element("sensor",
                             attrib={"id": f"s{sensor_index}"})
            sensor.append(Element("value", text="0"))
            group.append(sensor)
    return root


def _plan():
    from repro.core import PartitionPlan

    return PartitionPlan({
        "top": [(("region", "R"),)],
        "mid": [(("region", "R"), ("group", "g0"))],
        "leaf": [(("region", "R"), ("group", "g1"))],
    })


QUERIES = [
    "/region[@id='R']/group[@id='g0']/sensor[@id='s1']/value",
    "/region[@id='R']/group[@id='g0']/sensor",
    "/region[@id='R']/group[@id='g1']/sensor[@id='s2']",
]

G0_S1 = (("region", "R"), ("group", "g0"), ("sensor", "s1"))


def _ask_all(cluster, problems, stage, at_site="top"):
    """Run the query suite at a live site; every answer must be
    complete.  Returns canonical answer bytes keyed by query plus the
    number of ``served_by_replica`` annotations seen."""
    from repro.xmlkit import serialize

    answers = {}
    served = 0
    for query in QUERIES:
        results, _site, outcome = cluster.query(query, at_site=at_site)
        report = outcome.completeness_report()
        if not outcome.complete:
            problems.append(
                f"{stage}: incomplete answer for {query}: "
                f"{report['unreachable'] or report['replica_too_stale']}")
        served += len(report["served_by_replica"])
        answers[query] = sorted(
            serialize(r, sort_attributes=True, use_cache=False)
            for r in results)
    return answers, served


def _run():
    from repro.net import BreakerPolicy, OAConfig, RetryPolicy
    from repro.net.tcpruntime import TcpCluster
    from repro.replication import ReplicationConfig

    problems = []
    oa_config = OAConfig(
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0,
                                 max_delay=0.0, jitter=0.0,
                                 sleep=lambda seconds: None),
        breaker=BreakerPolicy(failure_threshold=3, reset_timeout=0.05),
        partial_answers=True)
    # A deterministic *advancing* clock: replica merges arbitrate by
    # data timestamp, so updates must carry a newer stamp than the
    # bootstrap copy (the default clock is a constant).
    ticks = {"now": 0.0}

    def clock():
        ticks["now"] += 1.0
        return ticks["now"]

    tcp = TcpCluster(_document(), _plan(), oa_config=oa_config,
                     replication=ReplicationConfig(k=2), clock=clock)
    try:
        from repro.net.messages import UpdateMessage

        cluster = tcp.cluster
        # Through the OA, not the bare database: the handler is what
        # re-replicates the touched region to the owner's peers.
        cluster.agents["mid"].handle_message(UpdateMessage(
            G0_S1, values={"value": "7"}, sender="sa-smoke"))
        baseline, _ = _ask_all(cluster, problems, "baseline")

        tcp.kill_site("mid")
        # Ask from a cold-cache site: a warm asker would answer from
        # its own cache (availability the paper already provides);
        # the smoke must exercise the *failover* path.
        outage, served = _ask_all(cluster, problems, "during outage",
                                  at_site="leaf")
        if outage != baseline:
            problems.append("outage answers differ from baseline")
        if served == 0:
            problems.append("no answer was annotated served_by_replica")

        tcp.restart_site("mid")
        if cluster.stats["site_rehydrations"] < 1:
            problems.append("restart did not rehydrate from peers")
        healed, _ = _ask_all(cluster, problems, "after restart")
        if healed != baseline:
            problems.append("post-restart answers differ from baseline")

        counters = cluster.metrics()["replication"]
        summary = {
            "queries": QUERIES,
            "failed_queries": sum(
                1 for problem in problems if "incomplete" in problem),
            "replica_served_annotations": served,
            "site_rehydrations": cluster.stats["site_rehydrations"],
            "rehydrated_bytes": cluster.stats["rehydrated_bytes"],
            "cluster_counters": {
                key: counters[key]
                for key in ("failover_attempts", "failover_served",
                            "replica_too_stale", "failover_no_replica",
                            "replicated_batches",
                            "replica_batches_accepted")},
            "ok": not problems,
        }
        return problems, summary
    finally:
        tcp.close()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="kill-an-owner replication smoke check")
    parser.add_argument("--artifacts", default="replication-smoke",
                        help="directory for the failover summary")
    args = parser.parse_args(argv)

    problems, summary = _run()

    os.makedirs(args.artifacts, exist_ok=True)
    summary_path = os.path.join(args.artifacts, "failover.json")
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(f"OK: owner 'mid' killed with zero failed queries "
          f"({summary['cluster_counters']['failover_served']} subqueries "
          f"replica-served), then restarted from peer replicas "
          f"({summary['rehydrated_bytes']} bytes rehydrated, no WAL).")
    print(f"Artifacts in {args.artifacts}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
