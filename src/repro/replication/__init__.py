"""Read replication: k-replica fragments, failover, peer recovery.

The paper's architecture gives every fragment exactly one owner, so a
dead owner means partial answers until it returns.  This subsystem
relaxes that: owners asynchronously replicate their local information
to their k nearest peers on the site ring, subquery dispatch fails
over to a replica when the owner is unreachable -- serving the copy
only when its version stamp satisfies the query's freshness bound --
and a restarting site rehydrates its fragment from peer replicas
before falling back to WAL replay.

Disabled (the default), the subsystem adds no wire messages and no
envelope bytes: traffic is byte-identical to a build without it.
"""

from repro.replication.manager import (
    ReplicationConfig,
    ReplicationManager,
    freshness_bound,
    replica_peers,
)

__all__ = [
    "ReplicationConfig",
    "ReplicationManager",
    "freshness_bound",
    "replica_peers",
]
