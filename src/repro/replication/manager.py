"""The per-site replication manager: replicate out, serve back, fail over.

One :class:`ReplicationManager` hangs off each organizing agent when
``OAConfig.replication`` is an enabled :class:`ReplicationConfig`.  It
plays three roles at once:

* **Owner**: after every applied update (and on bootstrap/adoption)
  the owner exports the changed nodes' local information as a wire
  fragment and fire-and-forgets a ``ReplicateMessage`` -- stamped with
  the data timestamps and the database's subtree version -- to its k
  nearest peers on the sorted site ring.  Loss is tolerated: the next
  update re-replicates, and stamps let replicas discard reordered
  stale batches.
* **Replica**: accepted fragments merge into one mini sensor database
  per remote owner (never into the site's own fragment -- replica data
  must not masquerade as this site's cache), with per-path stamps
  recording data timestamp, version and arrival time (replication lag).
* **Failover client**: when a dispatch group exhausts its retry budget
  against a dead owner, :meth:`failover` asks the owner's replicas for
  the region and serves the copy **only** when its stamp satisfies the
  subquery's freshness bound -- the bound is read from the wire-form
  query, so freshness-bucketed asks are judged at their (loosened)
  bucket boundary exactly as a mid-tier cache would, and the gather
  driver's escalation re-check still enforces the caller's exact
  tolerance afterwards.  A too-stale replica degrades to the ordinary
  partial answer, annotated ``replica_too_stale``.

Everything here is invisible on the wire while disabled: no messages
are sent, no envelope fields are added, and answers are byte-identical
to a replication-free build.
"""

import threading

from repro.core.answer import AnswerBuilder
from repro.core.database import SensorDatabase
from repro.core.gather import ReplicaServed, SubqueryFailure
from repro.core.consistency import (
    extract_tolerance,
    rewrite_consistency_sugar,
)
from repro.core.status import get_status, get_timestamp
from repro.net.errors import NetError
from repro.net.messages import (
    ErrorMessage,
    RehydrateAnswer,
    RehydrateRequest,
    ReplicaRetireMessage,
    ReplicateMessage,
)
from repro.xpath import parser as xpath_parser
from repro.xpath.analysis import REF_CONSISTENCY, classify_predicate
from repro.xpath.ast import (
    BinaryOperation,
    FunctionCall,
    LocationPath,
    walk,
)


class ReplicationConfig:
    """Tunables for read replication.

    ``k``
        how many ring-successor peers hold a copy of each owner's
        fragment (the SwarmAdaptiveMemory-style top-k nearest peers);
    ``enabled``
        master switch; ``False`` (or ``k <= 0``) leaves the wire
        byte-identical to a build without the subsystem.
    """

    def __init__(self, k=2, enabled=True):
        self.k = int(k)
        self.enabled = bool(enabled) and self.k > 0

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return f"ReplicationConfig(k={self.k}, {state})"


def replica_peers(owner, sites, k):
    """The k ring successors of *owner* among *sites* (deterministic).

    Sites sort lexically into a ring; an owner's replicas are the next
    k distinct sites clockwise.  Every site computes the same answer
    from the static partition plan, so askers know where to fail over
    without any membership protocol.
    """
    ring = sorted(set(sites))
    if k <= 0 or owner not in ring or len(ring) < 2:
        return []
    start = ring.index(owner)
    peers = []
    for step in range(1, len(ring)):
        peer = ring[(start + step) % len(ring)]
        if peer != owner:
            peers.append(peer)
        if len(peers) >= k:
            break
    return peers


def _conjuncts(predicate):
    if isinstance(predicate, BinaryOperation) and predicate.operator == "and":
        yield from _conjuncts(predicate.left)
        yield from _conjuncts(predicate.right)
    else:
        yield predicate


def freshness_bound(query):
    """The tightest freshness tolerance *query* demands, in seconds.

    Scans every step predicate for canonical consistency conjuncts
    (``timestamp() > current-time() - N``, sugar included) and returns
    the minimum ``N`` -- the bound replica data must satisfy to be
    served in this query's answer.  ``None`` means the query tolerates
    arbitrarily old data.
    """
    try:
        ast = xpath_parser.parse(query) if isinstance(query, str) else query
    except Exception:
        return None
    if isinstance(ast, FunctionCall) and ast.arguments and \
            isinstance(ast.arguments[0], LocationPath):
        ast = ast.arguments[0]
    ast = rewrite_consistency_sugar(ast)
    bound = None
    for node in walk(ast):
        if not isinstance(node, LocationPath):
            continue
        for step in node.steps:
            for predicate in step.predicates:
                for conjunct in _conjuncts(predicate):
                    if classify_predicate(conjunct) != \
                            frozenset({REF_CONSISTENCY}):
                        continue
                    seconds = extract_tolerance(conjunct)
                    if seconds is None:
                        continue
                    bound = seconds if bound is None \
                        else min(bound, seconds)
    return bound


def _as_path(id_path):
    return tuple(tuple(entry) for entry in id_path)


def _is_prefix(shorter, longer):
    return len(shorter) <= len(longer) and \
        tuple(longer[:len(shorter)]) == tuple(shorter)


def region_age(stamps, anchor_path, now):
    """How old the replicated region under *anchor_path* is, or ``None``.

    The region is only as fresh as its **oldest** stamped node at or
    below the anchor -- a conservative reading that never vouches for
    a subtree fresher than its stalest member.  ``None`` means the
    replica holds no data for the region at all.
    """
    anchor = _as_path(anchor_path)
    related = [
        stamp[0] for path, stamp in stamps.items()
        if _is_prefix(anchor, path)
    ]
    if not related:
        return None
    return max(0.0, float(now) - min(related))


class _ReplicaStore:
    """This site's copy of one remote owner's fragment, plus stamps.

    A mini :class:`SensorDatabase` (root-rooted, like any wire
    fragment) kept strictly apart from the site's own database, and a
    per-path stamp table ``{id_path: (timestamp, version, received)}``.
    Reordered replication batches are resolved by version: an arriving
    stamp older than the stored one is dropped.
    """

    def __init__(self, owner, clock):
        self.owner = owner
        self.clock = clock
        self.database = None
        self.stamps = {}

    def merge(self, fragment, stamps, now):
        accepted = 0
        fresh = {}
        for path, (timestamp, version) in stamps.items():
            existing = self.stamps.get(path)
            if existing is not None and existing[1] > version:
                continue
            fresh[path] = (float(timestamp), int(version), float(now))
            accepted += 1
        if not fresh:
            return 0
        if fragment is not None:
            if self.database is None:
                self.database = SensorDatabase(
                    fragment.copy(), clock=self.clock,
                    site_id=f"replica:{self.owner}")
            else:
                self.database.store_fragment(fragment)
        self.stamps.update(fresh)
        return accepted

    def wire_stamps(self):
        return {path: (stamp[0], stamp[1])
                for path, stamp in self.stamps.items()}

    def export(self, anchor_paths=()):
        """The stored copy as a wire fragment plus its covering stamps.

        With *anchor_paths* only those regions (subtrees) are exported;
        without, the whole per-owner copy ships -- the rehydration
        payload a restarting owner asks for.
        """
        if self.database is None:
            return None, {}
        builder = AnswerBuilder(self.database)
        if anchor_paths:
            stamps = {}
            for anchor in anchor_paths:
                anchor = _as_path(anchor)
                element = self.database.find(anchor)
                if element is None or \
                        not get_status(element).has_local_information:
                    continue
                builder.include_subtree(element)
                for path, stamp in self.stamps.items():
                    if _is_prefix(anchor, path):
                        stamps[path] = (stamp[0], stamp[1])
        else:
            for element in self.database.iter_idable():
                if get_status(element).has_local_information:
                    builder.include_local_information(element)
            stamps = self.wire_stamps()
        return builder.build(), stamps

    def ages(self, now):
        if not self.stamps:
            return None
        deltas = [max(0.0, float(now) - stamp[0])
                  for stamp in self.stamps.values()]
        return {
            "entries": len(deltas),
            "min_age": round(min(deltas), 3),
            "max_age": round(max(deltas), 3),
        }


class ReplicationManager:
    """One site's replication state machine (see module docstring)."""

    def __init__(self, agent):
        self.agent = agent
        self.config = agent.config.replication
        self.topology = ()
        self._stores = {}
        self._lock = threading.Lock()
        self.stats = {
            "replicated_batches": 0,
            "replicated_entries": 0,
            "replicated_bytes": 0,
            "replica_batches_accepted": 0,
            "replica_entries_accepted": 0,
            "replica_batches_stale_dropped": 0,
            "failover_attempts": 0,
            "failover_served": 0,
            "replica_too_stale": 0,
            "failover_no_replica": 0,
            "rehydrations_served": 0,
            "retires_sent": 0,
            "retired_entries": 0,
            "lag_count": 0,
            "lag_total": 0.0,
            "lag_max": 0.0,
        }

    @property
    def enabled(self):
        return self.config is not None and self.config.enabled

    # -- topology -------------------------------------------------------
    def set_topology(self, sites):
        """Pin the static site ring (from the partition plan)."""
        self.topology = tuple(sorted(set(sites)))

    def peers(self):
        """This site's own replica set."""
        return replica_peers(self.agent.site_id, self.topology,
                             self.config.k)

    # -- owner side: replicate out --------------------------------------
    def note_update(self, id_path):
        """An update landed on an owned node: re-replicate it."""
        self._replicate([_as_path(id_path)])

    def note_owned(self, id_paths):
        """Nodes were adopted (migration): replicate the new region."""
        self._replicate([_as_path(path) for path in id_paths])

    def replicate_owned(self):
        """Bootstrap: push every owned node to this site's replica set."""
        self._replicate([_as_path(path)
                         for path in self.agent.database.owned_paths()])

    def retire_paths(self, id_paths):
        """Ring re-placement after migrating *id_paths* away.

        The replicas this site pushed for the region are stale for
        ever -- the new owner replicates to *its own* ring successors
        (``note_owned`` on adoption).  Telling our peers to drop their
        stamps keeps a later failover from serving the frozen copy.
        Fire-and-forget, like replication itself: a lost retire only
        leaves a stamp whose age keeps growing, which the freshness
        check already refuses to serve eventually.
        """
        if not self.enabled:
            return 0
        peers = self.peers()
        if not peers or not id_paths:
            return 0
        message = ReplicaRetireMessage(
            self.agent.site_id, [_as_path(path) for path in id_paths],
            sender=self.agent.site_id)
        for peer in peers:
            self.agent.network.tell(self.agent.site_id, peer, message)
        with self._lock:
            self.stats["retires_sent"] += len(peers)
        return len(peers)

    def retire(self, owner, id_paths):
        """Replica side: drop stamps for a region *owner* gave up.

        Every stamp at or under one of *id_paths* in *owner*'s store
        is removed: the old ring stops vouching for the migrated
        region, so a failover anchored inside it finds ``region_age``
        ``None`` and falls through to the next candidate (or degrades
        to an honest partial answer) instead of claiming the frozen
        copy is live.  The copied *data* stays -- it is exactly as
        trustworthy as the old owner's own demoted ``complete`` copy
        (a point-in-time snapshot), and freshness-bounded queries
        re-check per-node timestamps at evaluation time anyway, so a
        frozen node can never satisfy a bound it has outlived.
        Returns the number of stamps dropped.
        """
        targets = [_as_path(path) for path in id_paths]
        dropped = 0
        with self._lock:
            store = self._stores.get(owner)
            if store is None:
                return 0
            doomed = [
                path for path in store.stamps
                if any(path[:len(target)] == target for target in targets)
            ]
            for path in doomed:
                del store.stamps[path]
                dropped += 1
            if not store.stamps:
                del self._stores[owner]
            self.stats["retired_entries"] += dropped
        return dropped

    def _replicate(self, paths):
        if not self.enabled:
            return
        peers = self.peers()
        if not peers or not paths:
            return
        database = self.agent.database
        builder = AnswerBuilder(database)
        version = database.root.subtree_version
        now = float(self.agent.clock())
        stamps = {}
        for path in paths:
            element = database.find(path)
            if element is None or \
                    not get_status(element).has_local_information:
                continue
            builder.include_local_information(element)
            timestamp = get_timestamp(element)
            stamps[path] = (timestamp if timestamp is not None else now,
                            version)
        fragment = builder.build()
        if fragment is None or not stamps:
            return
        message = ReplicateMessage(self.agent.site_id, fragment, stamps,
                                   sender=self.agent.site_id)
        size = message.encoded_size()
        for peer in peers:
            # Fire-and-forget: a lost batch is repaired by the next
            # update's batch (stamps make reordering safe).  Read the
            # network off the agent at send time -- runtimes rewire it
            # after construction.
            self.agent.network.tell(self.agent.site_id, peer, message)
        with self._lock:
            self.stats["replicated_batches"] += len(peers)
            self.stats["replicated_entries"] += len(stamps) * len(peers)
            self.stats["replicated_bytes"] += size * len(peers)

    # -- replica side: accept and serve ---------------------------------
    def accept(self, message):
        """Merge one inbound :class:`ReplicateMessage`; returns entries
        accepted (stale-version entries are dropped, not merged)."""
        now = float(self.agent.clock())
        with self._lock:
            store = self._stores.get(message.owner)
            if store is None:
                store = _ReplicaStore(message.owner, self.agent.clock)
                self._stores[message.owner] = store
            accepted = store.merge(message.fragment, message.stamps, now)
            if accepted:
                self.stats["replica_batches_accepted"] += 1
                self.stats["replica_entries_accepted"] += accepted
                for timestamp, _version in message.stamps.values():
                    lag = max(0.0, now - float(timestamp))
                    self.stats["lag_count"] += 1
                    self.stats["lag_total"] += lag
                    if lag > self.stats["lag_max"]:
                        self.stats["lag_max"] = lag
            else:
                self.stats["replica_batches_stale_dropped"] += 1
        return accepted

    def export_for(self, owner, id_paths=()):
        """Serve a rehydrate/failover ask for *owner*'s replicated data."""
        with self._lock:
            store = self._stores.get(owner)
            if store is None:
                return None, {}
            fragment, stamps = store.export(id_paths)
            if fragment is not None:
                self.stats["rehydrations_served"] += 1
        return fragment, stamps

    def holds_replica_of(self, owner):
        with self._lock:
            store = self._stores.get(owner)
            return store is not None and store.database is not None

    # -- asker side: failover -------------------------------------------
    def failover(self, target, subqueries, attempts, causes):
        """Serve a dead owner's subqueries from its replicas, if fresh.

        Returns one reply per subquery -- a
        :class:`~repro.core.gather.ReplicaServed` carrying the replica
        fragment when a copy satisfies the (wire) query's freshness
        bound, otherwise a :class:`SubqueryFailure` whose causes append
        what each replica said (``replica_too_stale`` set when a copy
        existed but was too old).  Returns ``None`` when replication is
        off or the owner has no replicas: the caller falls back to the
        legacy partial-answer path untouched.
        """
        if not self.enabled or not self.topology:
            return None
        peers = replica_peers(target, self.topology, self.config.k)
        if not peers:
            return None
        with self._lock:
            self.stats["failover_attempts"] += 1
        now = float(self.agent.clock())
        anchors = [subquery.anchor_path for subquery in subqueries
                   if not subquery.scalar]
        views = self._candidate_views(target, anchors, peers)
        replies = []
        for subquery in subqueries:
            if subquery.scalar:
                # Probes need evaluation at a live site; replicas only
                # hold data.  Degrade as before.
                replies.append(SubqueryFailure(
                    subquery, attempts,
                    list(causes) + ["replicas do not serve scalar probes"],
                ))
                continue
            bound = freshness_bound(subquery.query)
            served = None
            extra_causes = []
            saw_stale = False
            for peer, fragment, stamps in views:
                age = region_age(stamps, subquery.anchor_path, now)
                if age is None or fragment is None:
                    continue
                if bound is not None and age > bound:
                    saw_stale = True
                    extra_causes.append(
                        f"replica {peer!r}: copy too stale "
                        f"(age {age:g}s > bound {bound:g}s)")
                    continue
                served = ReplicaServed(subquery, fragment, replica=peer,
                                       owner=target, age=age)
                break
            if served is not None:
                replies.append(served)
                with self._lock:
                    self.stats["failover_served"] += 1
                continue
            if not saw_stale:
                extra_causes.append(
                    f"no replica of site {target!r} holds the region")
            failure = SubqueryFailure(subquery, attempts,
                                      list(causes) + extra_causes)
            failure.replica_too_stale = saw_stale
            replies.append(failure)
            with self._lock:
                if saw_stale:
                    self.stats["replica_too_stale"] += 1
                else:
                    self.stats["failover_no_replica"] += 1
        return replies

    def _candidate_views(self, target, anchors, peers):
        """Fetch each replica's view of *target*'s regions, ring order.

        This site may itself be in the replica set (serve locally, no
        wire traffic); remote peers are asked with one
        :class:`RehydrateRequest` covering every anchor, gated by the
        same circuit breakers as ordinary dispatch.
        """
        views = []
        health = self.agent.health
        for peer in peers:
            if peer == self.agent.site_id:
                fragment, stamps = self.export_for(target, anchors)
                if fragment is not None:
                    views.append((peer, fragment, stamps))
                continue
            if health is not None and not health.allow(peer):
                continue
            message = RehydrateRequest(target, anchors,
                                       sender=self.agent.site_id)
            try:
                reply = self.agent.network.request(
                    self.agent.site_id, peer, message)
            except (OSError, NetError):
                if health is not None:
                    health.record_failure(peer)
                continue
            if isinstance(reply, ErrorMessage) or \
                    not isinstance(reply, RehydrateAnswer):
                continue
            if health is not None:
                health.record_success(peer)
            if reply.fragment is not None:
                views.append((peer, reply.fragment, reply.stamps))
        return views

    # -- introspection ---------------------------------------------------
    def counters(self):
        """Replication counters for the metrics registry / EXPLAIN."""
        now = float(self.agent.clock())
        with self._lock:
            counters = dict(self.stats)
            counters["replication_lag_mean"] = round(
                counters["lag_total"] / counters["lag_count"], 6
            ) if counters["lag_count"] else 0.0
            stores = {}
            for owner, store in sorted(self._stores.items()):
                ages = store.ages(now)
                if ages is not None:
                    stores[owner] = ages
        counters["enabled"] = self.enabled
        counters["k"] = self.config.k if self.config is not None else 0
        counters["peers"] = list(self.peers()) if self.enabled else []
        counters["replicas_held"] = stores
        return counters
