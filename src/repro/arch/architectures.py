"""The four sensor-database architectures of Figure 6.

Each architecture is a :class:`~repro.core.partition.PartitionPlan`
over the parking document plus a routing policy:

1. **Centralized** -- all data on one server; every query and update
   goes there.
2. **Centralized querying, distributed update** -- blocks distributed
   over the worker sites (simulating a distributed object-relational
   store), but all queries still enter through the central server,
   which is the sole repository of the block-to-site mapping.
3. **Distributed querying, distributed update, fixed two-level
   organization** -- same data placement as (2), but the block-to-site
   mapping lives in DNS, so type-1 queries self-start directly at the
   owning site.
4. **Distributed querying, distributed update, hierarchical
   organization** -- the IrisNet placement: neighborhoods on their own
   sites, cities on two more, the remaining upper hierarchy on one.

Plus the *balanced* placements used by the load-balancing experiments
(Figure 8): the hot neighborhood's blocks spread across all sites.
"""

from repro.core.partition import PartitionPlan
from repro.service import parking


class Architecture:
    """A named placement plus its query-routing policy."""

    def __init__(self, name, plan, forced_entry=None, description=""):
        self.name = name
        self.plan = plan
        #: queries all enter at this site (architectures 1 and 2);
        #: ``None`` means DNS self-starting routing.
        self.forced_entry = forced_entry
        self.description = description

    @property
    def uses_dns_routing(self):
        return self.forced_entry is None

    def entry_site(self, cluster, query):
        """Where a client sends *query* under this architecture."""
        if self.forced_entry is not None:
            return self.forced_entry
        site, _path = cluster.route_query(query)
        return site

    def __repr__(self):
        return f"Architecture({self.name!r}, sites={len(self.plan.sites)})"


def _site_names(count):
    return [f"site-{i}" for i in range(count)]


def centralized(config):
    """Architecture 1: everything on a single central server."""
    central = "site-0"
    plan = PartitionPlan({central: [parking.region_path(config)]})
    return Architecture(
        "centralized", plan, forced_entry=central,
        description="all data, queries and updates at one server",
    )


def _blocks_round_robin(config, workers):
    """Assign every block to a worker site, round-robin."""
    assignments = {site: [] for site in workers}
    index = 0
    for city in config.city_names():
        for neighborhood in config.neighborhood_names():
            for block in config.block_ids():
                site = workers[index % len(workers)]
                assignments[site].append(
                    parking.block_path(config, city, neighborhood, block)
                )
                index += 1
    return assignments


def centralized_query_distributed_update(config, n_sites=9):
    """Architecture 2: blocks distributed, queries through the center.

    Simulates a simple distributed object-relational database: the
    block "table" is partitioned over the workers while the hierarchy
    lives at the central server, which every query must visit.
    """
    sites = _site_names(n_sites)
    central, workers = sites[0], sites[1:]
    assignments = _blocks_round_robin(config, workers)
    assignments[central] = [parking.region_path(config)]
    return Architecture(
        "centralized-query", PartitionPlan(assignments),
        forced_entry=central,
        description="blocks on workers, all queries enter centrally",
    )


def distributed_two_level(config, n_sites=9):
    """Architecture 3: same placement as (2) but DNS-routed queries."""
    base = centralized_query_distributed_update(config, n_sites=n_sites)
    return Architecture(
        "distributed-two-level", base.plan, forced_entry=None,
        description="blocks on workers, block-to-site mapping in DNS",
    )


def hierarchical(config, n_sites=9):
    """Architecture 4: the IrisNet hierarchical placement (Section 5.3).

    Each neighborhood gets its own site, each city its own site, and
    the remaining upper hierarchy one more -- exactly the paper's
    "scenario of choice".  With the default config this needs 9 sites
    (6 neighborhoods + 2 cities + 1 top).
    """
    cities = config.city_names()
    neighborhoods = config.neighborhood_names()
    needed = len(cities) * len(neighborhoods) + len(cities) + 1
    if n_sites < needed:
        raise ValueError(
            f"hierarchical placement needs {needed} sites, got {n_sites}"
        )
    sites = _site_names(n_sites)
    assignments = {sites[0]: [parking.region_path(config)]}
    index = 1
    for city in cities:
        assignments.setdefault(sites[index], []).append(
            parking.city_path(config, city))
        index += 1
    for city in cities:
        for neighborhood in neighborhoods:
            assignments.setdefault(sites[index], []).append(
                parking.neighborhood_path(config, city, neighborhood))
            index += 1
    # Any leftover sites participate with no initial ownership (they
    # become useful after load balancing / caching).
    for site in sites[index:]:
        assignments.setdefault(site, [])
    return Architecture(
        "hierarchical", PartitionPlan(assignments), forced_entry=None,
        description="neighborhoods/cities/top on separate sites (IrisNet)",
    )


def balanced_hot_neighborhood(config, hot_city, hot_neighborhood, n_sites=9):
    """Figure 8's balanced placement: spread the hot neighborhood.

    Starts from the hierarchical placement, then re-assigns the hot
    neighborhood's blocks round-robin across *all* sites.
    """
    base = hierarchical(config, n_sites=n_sites)
    assignments = {site: list(paths)
                   for site, paths in base.plan.assignments.items()}
    sites = _site_names(n_sites)
    for index, block in enumerate(config.block_ids()):
        site = sites[index % len(sites)]
        assignments.setdefault(site, []).append(
            parking.block_path(config, hot_city, hot_neighborhood, block)
        )
    return Architecture(
        "balanced", PartitionPlan(assignments), forced_entry=None,
        description="hierarchical + hot neighborhood's blocks spread "
                    "across all sites",
    )


def all_architectures(config, n_sites=9):
    """The four architectures of Figure 6, in order."""
    return [
        centralized(config),
        centralized_query_distributed_update(config, n_sites=n_sites),
        distributed_two_level(config, n_sites=n_sites),
        hierarchical(config, n_sites=n_sites),
    ]
