"""Deployment architectures (Figure 6) and placement variants."""

from repro.arch.architectures import (
    Architecture,
    all_architectures,
    balanced_hot_neighborhood,
    centralized,
    centralized_query_distributed_update,
    distributed_two_level,
    hierarchical,
)

__all__ = [
    "Architecture",
    "centralized",
    "centralized_query_distributed_update",
    "distributed_two_level",
    "hierarchical",
    "balanced_hot_neighborhood",
    "all_architectures",
]
