"""A coastal-monitoring service document (the paper's second use case).

Section 1 mentions deploying IrisNet "along the Oregon coastline, to
monitor a variety of coastal phenomena (rip-tides, sandbar formation,
etc.)".  This module generates a matching document so examples and
tests exercise the system on a second, differently shaped hierarchy:

    coastline > region > station > instrument readings
"""

import random

from repro.xmlkit.nodes import Element

_REGIONS = ["north-coast", "central-coast", "south-coast"]


class CoastalConfig:
    """Shape of the generated coastal-monitoring database."""

    def __init__(self, regions=3, stations_per_region=4, seed=7):
        self.regions = regions
        self.stations_per_region = stations_per_region
        self.seed = seed

    def region_names(self):
        return [
            _REGIONS[i] if i < len(_REGIONS) else f"region-{i + 1}"
            for i in range(self.regions)
        ]

    def station_ids(self):
        return [f"st-{i + 1}" for i in range(self.stations_per_region)]


def build_coastal_document(config=None):
    """Generate the coastline document.

    Stations carry water temperature, salinity, wave height and a
    rip-current risk flag; regions carry an ``alert-level`` aggregate.
    """
    config = config or CoastalConfig()
    rng = random.Random(config.seed)
    root = Element("coastline", attrib={"id": "oregon"})
    for region_name in config.region_names():
        region = Element("region", attrib={"id": region_name})
        root.append(region)
        worst = "low"
        for station_id in config.station_ids():
            station = Element("station", attrib={
                "id": station_id,
                "latitude": f"{44 + rng.random():.4f}",
                "longitude": f"{-124 - rng.random() * 0.2:.4f}",
            })
            risk = rng.choice(["low", "low", "medium", "high"])
            if risk == "high":
                worst = "high"
            elif risk == "medium" and worst == "low":
                worst = "medium"
            station.append(Element(
                "water-temperature", text=f"{9 + rng.random() * 6:.1f}"))
            station.append(Element(
                "salinity", text=f"{31 + rng.random() * 3:.2f}"))
            station.append(Element(
                "wave-height", text=f"{rng.random() * 4:.2f}"))
            station.append(Element("rip-current-risk", text=risk))
            region.append(station)
        region.append(Element("alert-level", text=worst))
    return root


def station_path(region, station):
    return (("coastline", "oregon"), ("region", region), ("station", station))


def high_risk_query():
    """All stations currently reporting high rip-current risk."""
    return "/coastline[@id='oregon']//station[rip-current-risk='high']"


def region_alert_query(region):
    """The alert level of one region, tolerating 120s-old cached data."""
    return (
        f"/coastline[@id='oregon']/region[@id='{region}']"
        f"[timestamp() > current-time() - 120]/alert-level"
    )
