"""Scale scenarios: parameterized wide-area sensor deployments.

The paper's motivating numbers are big -- "a million links" for the
traffic service, tens of thousands of webcams along a coastline --
while the worked examples stay four-sites small.  This module closes
that gap with a generator for *deployment* documents of any size::

    deployment > zone^depth > sensor > value

``fanout`` zones per level, ``depth`` zone levels, ``sensors_per_group``
sensors under each leaf zone: ``ScenarioConfig(fanout=8, depth=3,
sensors_per_group=1000)`` is ~1.02M elements.  :func:`build_plan`
partitions the tree over dozens of sites (every zone prefix down to
``site_depth`` becomes an organizing agent), and
:func:`update_stream` drives it with a zipf-skewed update mix -- the
few-hot/many-cold distribution sensor traffic actually has.

Paths are computed arithmetically from sensor indices
(:func:`sensor_path`), so a million-sensor stream never materializes a
million-entry list.
"""

import bisect
import random

from repro.core.partition import PartitionPlan
from repro.xmlkit.nodes import Element

__all__ = [
    "ScenarioConfig",
    "ScenarioWorkload",
    "build_document",
    "build_plan",
    "group_path",
    "million_config",
    "quick_config",
    "rollup_query",
    "sensor_path",
    "update_stream",
]


class ScenarioConfig:
    """Shape of one generated deployment.

    ``fanout``
        zones per interior level;
    ``depth``
        zone levels between the root and the sensors (``depth=0`` puts
        sensors directly under the root);
    ``sensors_per_group``
        sensors under each leaf zone;
    ``site_depth``
        zone levels that get their own organizing agent (0 = a single
        site owns everything; 1 = root + ``fanout`` sites; 2 adds
        ``fanout**2`` more, ...);
    ``zipf_s``
        skew exponent for :func:`update_stream` (0 = uniform);
    ``seed``
        value/stream randomness.
    """

    def __init__(self, fanout=4, depth=2, sensors_per_group=8,
                 site_depth=1, zipf_s=1.1, seed=11, root_id="wide"):
        if depth < 0 or fanout < 1 or sensors_per_group < 1:
            raise ValueError("scenario dimensions must be positive")
        if site_depth > depth:
            raise ValueError("site_depth cannot exceed depth")
        self.fanout = fanout
        self.depth = depth
        self.sensors_per_group = sensors_per_group
        self.site_depth = site_depth
        self.zipf_s = zipf_s
        self.seed = seed
        self.root_id = root_id

    @property
    def group_count(self):
        return self.fanout ** self.depth

    @property
    def sensor_count(self):
        return self.group_count * self.sensors_per_group

    @property
    def element_count(self):
        """Total document elements (root + zones + sensor/value pairs)."""
        zones = sum(self.fanout ** level
                    for level in range(1, self.depth + 1))
        return 1 + zones + 2 * self.sensor_count

    @property
    def site_count(self):
        return 1 + sum(self.fanout ** level
                       for level in range(1, self.site_depth + 1))

    def __repr__(self):
        return (f"ScenarioConfig(fanout={self.fanout}, depth={self.depth}, "
                f"sensors_per_group={self.sensors_per_group}, "
                f"~{self.element_count} elements, "
                f"{self.site_count} sites)")


def quick_config(**overrides):
    """A seconds-scale config for smoke tests (~100 elements, 4 sites)."""
    params = dict(fanout=3, depth=2, sensors_per_group=4, site_depth=1)
    params.update(overrides)
    return ScenarioConfig(**params)


def million_config(**overrides):
    """The acceptance-scale config: ~1.02M elements over 73 sites."""
    params = dict(fanout=8, depth=3, sensors_per_group=1000, site_depth=2)
    params.update(overrides)
    return ScenarioConfig(**params)


# ----------------------------------------------------------------------
# Paths, computed -- never stored
# ----------------------------------------------------------------------
def _zone_digits(config, group_index):
    """*group_index* as ``depth`` base-``fanout`` digits, most
    significant first."""
    digits = []
    for _ in range(config.depth):
        digits.append(group_index % config.fanout)
        group_index //= config.fanout
    return tuple(reversed(digits))


def group_path(config, group_index):
    """The id path of leaf zone *group_index* (row-major order)."""
    path = [("deployment", config.root_id)]
    for digit in _zone_digits(config, group_index):
        path.append(("zone", f"z{digit}"))
    return tuple(path)


def sensor_path(config, sensor_index):
    """The id path of sensor *sensor_index* (grouped row-major)."""
    group_index, offset = divmod(sensor_index, config.sensors_per_group)
    return group_path(config, group_index) + (("sensor", f"s{offset}"),)


# ----------------------------------------------------------------------
# Document and partition plan
# ----------------------------------------------------------------------
def build_document(config=None):
    """Generate the deployment document (values seeded, reproducible)."""
    config = config or ScenarioConfig()
    rng = random.Random(config.seed)
    root = Element("deployment", attrib={"id": config.root_id})

    def grow(parent, level):
        if level == config.depth:
            for offset in range(config.sensors_per_group):
                sensor = Element("sensor", attrib={"id": f"s{offset}"})
                sensor.append(Element(
                    "value", text=f"{rng.uniform(0.0, 100.0):.2f}"))
                parent.append(sensor)
            return
        for digit in range(config.fanout):
            zone = Element("zone", attrib={"id": f"z{digit}"})
            parent.append(zone)
            grow(zone, level + 1)

    grow(root, 0)
    return root


def site_name(prefix_digits):
    """The organizing agent owning the zone prefix *prefix_digits*."""
    if not prefix_digits:
        return "root"
    return "oa-" + "-".join(f"z{digit}" for digit in prefix_digits)


def build_plan(config=None):
    """Partition ownership: one site per zone prefix to ``site_depth``."""
    config = config or ScenarioConfig()
    assignments = {"root": [(("deployment", config.root_id),)]}

    def assign(prefix_digits):
        if len(prefix_digits) >= config.site_depth:
            return
        for digit in range(config.fanout):
            child = prefix_digits + (digit,)
            path = [("deployment", config.root_id)]
            path.extend(("zone", f"z{d}") for d in child)
            assignments[site_name(child)] = [tuple(path)]
            assign(child)

    assign(())
    return PartitionPlan(assignments)


# ----------------------------------------------------------------------
# Zipf-skewed update stream
# ----------------------------------------------------------------------
def update_stream(config, count, seed=None):
    """Yield *count* ``(id_path, values)`` sensor updates.

    Sensor ranks are zipf-weighted (``1/(rank+1)**zipf_s``): a handful
    of sensors absorb most updates while the long tail stays cold --
    the skew Figure 8's experiments build in by hand.  Rank order is a
    seeded shuffle of sensor indices, so hot sensors scatter across
    groups (and therefore across sites) instead of clustering in the
    first one.
    """
    rng = random.Random(config.seed if seed is None else seed)
    n = config.sensor_count
    order = list(range(n))
    rng.shuffle(order)
    cumulative = []
    total = 0.0
    for rank in range(n):
        total += 1.0 / float(rank + 1) ** config.zipf_s
        cumulative.append(total)
    for _ in range(count):
        rank = bisect.bisect_left(cumulative, rng.random() * total)
        index = order[min(rank, n - 1)]
        yield sensor_path(config, index), \
            {"value": f"{rng.uniform(0.0, 100.0):.2f}"}


# ----------------------------------------------------------------------
# Open-loop workload adapter
# ----------------------------------------------------------------------
class ScenarioWorkload:
    """Open-loop arrivals for a generated deployment.

    The sample shapes match what
    :func:`~repro.service.workload.run_open_loop` routes: a
    ``(query, "aggregate")`` pair fires a user query at the
    DNS-resolved site, an ``(id_path, values)`` pair fires an update at
    the owner.  *skew* is the fraction of queries pinned under the hot
    top-level zone; each such query targets a uniformly-chosen *child*
    zone of it, so the hot site's load is attributed across several
    IDable units -- the shape a fragment split can actually spread
    (an all-one-unit hot spot is correctly refused by the planner).
    The remaining queries pick their top-level zone uniformly.
    *pin_depth* is how many zone digits a skewed query pins (default:
    2 levels when the config has them) -- deeper pins mean smaller,
    cheaper rollups, which is what keeps query cost sane on the
    million-element configs.  *update_fraction* mixes in zipf-skewed
    sensor updates from :func:`update_stream`.
    """

    def __init__(self, config, shape="avg", hot_zone=0, skew=0.8,
                 bound=None, update_fraction=0.0, pin_depth=None,
                 seed=None):
        if not 0.0 <= skew <= 1.0:
            raise ValueError("skew must be in [0, 1]")
        if not 0.0 <= update_fraction <= 1.0:
            raise ValueError("update_fraction must be in [0, 1]")
        if hot_zone >= config.fanout:
            raise ValueError("hot_zone exceeds the fanout")
        if pin_depth is None:
            pin_depth = min(config.depth, 2)
        if not 0 <= pin_depth <= config.depth:
            raise ValueError("pin_depth must be in [0, depth]")
        self.config = config
        self.shape = shape
        self.hot_zone = hot_zone
        self.skew = skew
        self.bound = bound
        self.update_fraction = update_fraction
        self.pin_depth = pin_depth
        self.rng = random.Random(config.seed if seed is None else seed)
        self._updates = None

    def _next_update(self):
        if self._updates is None:
            # One endless stream: its zipf table is built exactly once
            # (it is O(sensor_count), noticeable at the million scale).
            self._updates = update_stream(
                self.config, count=1 << 62,
                seed=self.rng.randrange(2 ** 31))
        return next(self._updates)

    def sample(self):
        if self.update_fraction and \
                self.rng.random() < self.update_fraction:
            return self._next_update()
        config = self.config
        if self.pin_depth == 0:
            zone = ()
        elif self.rng.random() < self.skew:
            zone = (self.hot_zone,) + tuple(
                self.rng.randrange(config.fanout)
                for _ in range(self.pin_depth - 1))
        else:
            zone = (self.rng.randrange(config.fanout),) + tuple(
                self.rng.randrange(config.fanout)
                for _ in range(self.pin_depth - 1))
        query = rollup_query(config, shape=self.shape, zone=zone,
                             bound=self.bound)
        return query, "aggregate"

    def __call__(self):
        return self.sample()

    def take(self, count):
        return [self.sample() for _ in range(count)]


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def rollup_query(config, shape="avg", zone=None, bound=None):
    """An aggregate over every sensor value under *zone* (or the root).

    *zone* is a tuple of zone digits pinning a subtree (``(0, 1)`` =
    ``/zone[@id='z0']/zone[@id='z1']``); *bound* adds a freshness
    predicate (seconds) on the final step -- the spelling the rollup
    algebra accepts and the summary cache buckets.
    """
    zone = tuple(zone or ())
    steps = [f"/deployment[@id='{config.root_id}']"]
    for digit in zone:
        steps.append(f"/zone[@id='z{digit}']")
    steps.extend("/zone" for _ in range(config.depth - len(zone)))
    steps.append("/sensor")
    last = "/value"
    if bound is not None:
        last += f"[timestamp() > current-time() - {bound:g}]"
    steps.append(last)
    return f"{shape}({''.join(steps)})"
