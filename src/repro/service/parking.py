"""The Parking Space Finder service: document generator and queries.

Reproduces the paper's experimental database (Section 5.1): "2 cities,
3 neighborhoods per city, 20 blocks per neighborhood, and 20 parking
spaces per block" -- 2400 spaces -- organized in the
geographic/political hierarchy of Figure 1, plus the 8x "large"
variant used by the micro-benchmarks (double the neighborhoods, blocks
and spaces per block).
"""

import random

from repro.xmlkit.nodes import Element

_CITY_NAMES = ["Pittsburgh", "Philadelphia", "Harrisburg", "Erie",
               "Allentown", "Scranton", "Reading", "Bethlehem"]
_NEIGHBORHOOD_NAMES = [
    "Oakland", "Shadyside", "Downtown", "Squirrel-Hill", "Bloomfield",
    "Lawrenceville", "Etna", "Greenfield", "Regent-Square", "Highland-Park",
    "Point-Breeze", "Friendship",
]


class ParkingConfig:
    """Shape of the generated parking database."""

    def __init__(self, cities=2, neighborhoods_per_city=3,
                 blocks_per_neighborhood=20, spaces_per_block=20,
                 region="NE", state="PA", county="Allegheny", seed=17):
        self.cities = cities
        self.neighborhoods_per_city = neighborhoods_per_city
        self.blocks_per_neighborhood = blocks_per_neighborhood
        self.spaces_per_block = spaces_per_block
        self.region = region
        self.state = state
        self.county = county
        self.seed = seed

    @classmethod
    def paper_small(cls):
        """The 2400-space database of Section 5.1."""
        return cls()

    @classmethod
    def paper_large(cls):
        """The 8x database of Section 5.6 (2x neighborhoods/blocks/spaces)."""
        return cls(neighborhoods_per_city=6, blocks_per_neighborhood=40,
                   spaces_per_block=40)

    @classmethod
    def tiny(cls):
        """A small database for fast tests."""
        return cls(cities=2, neighborhoods_per_city=2,
                   blocks_per_neighborhood=3, spaces_per_block=3)

    @property
    def total_spaces(self):
        return (self.cities * self.neighborhoods_per_city *
                self.blocks_per_neighborhood * self.spaces_per_block)

    def city_names(self):
        return [
            _CITY_NAMES[i] if i < len(_CITY_NAMES) else f"City-{i + 1}"
            for i in range(self.cities)
        ]

    def neighborhood_names(self):
        return [
            _NEIGHBORHOOD_NAMES[i] if i < len(_NEIGHBORHOOD_NAMES)
            else f"Nbhd-{i + 1}"
            for i in range(self.neighborhoods_per_city)
        ]

    def block_ids(self):
        return [str(i + 1) for i in range(self.blocks_per_neighborhood)]

    def space_ids(self):
        return [str(i + 1) for i in range(self.spaces_per_block)]


def build_parking_document(config=None):
    """Generate the parking database document.

    Every parking space carries ``available`` (yes/no), ``price``
    (cents) and ``meter-hours`` children; neighborhoods carry a
    ``zipcode`` attribute and an ``available-spaces`` aggregate field,
    mirroring the attributes the paper's example queries touch.
    """
    config = config or ParkingConfig.paper_small()
    rng = random.Random(config.seed)
    root = Element("usRegion", attrib={"id": config.region})
    state = Element("state", attrib={"id": config.state})
    root.append(state)
    county = Element("county", attrib={"id": config.county})
    state.append(county)
    for city_name in config.city_names():
        city = Element("city", attrib={"id": city_name})
        county.append(city)
        for nb_index, nb_name in enumerate(config.neighborhood_names()):
            neighborhood = Element("neighborhood", attrib={
                "id": nb_name,
                "zipcode": str(15200 + nb_index),
            })
            city.append(neighborhood)
            free_count = 0
            for block_id in config.block_ids():
                block = Element("block", attrib={"id": block_id})
                neighborhood.append(block)
                for space_id in config.space_ids():
                    available = rng.random() < 0.5
                    free_count += 1 if available else 0
                    space = Element("parkingSpace", attrib={"id": space_id})
                    space.append(Element(
                        "available", text="yes" if available else "no"))
                    space.append(Element(
                        "price", text=str(rng.choice([0, 25, 50, 75]))))
                    space.append(Element(
                        "meter-hours", text=str(rng.choice([1, 2, 4, 10]))))
                    block.append(space)
            neighborhood.append(
                Element("available-spaces", text=str(free_count)))
    return root


# ----------------------------------------------------------------------
# Path helpers
# ----------------------------------------------------------------------
def region_path(config):
    return ((("usRegion", config.region)),)


def city_path(config, city):
    return (
        ("usRegion", config.region),
        ("state", config.state),
        ("county", config.county),
        ("city", city),
    )


def neighborhood_path(config, city, neighborhood):
    return city_path(config, city) + (("neighborhood", neighborhood),)


def block_path(config, city, neighborhood, block):
    return neighborhood_path(config, city, neighborhood) + (("block", block),)


def space_path(config, city, neighborhood, block, space):
    return block_path(config, city, neighborhood, block) + \
        (("parkingSpace", space),)


def all_space_paths(config):
    """ID paths of every parking space, for wiring up sensing agents."""
    paths = []
    for city in config.city_names():
        for neighborhood in config.neighborhood_names():
            for block in config.block_ids():
                for space in config.space_ids():
                    paths.append(space_path(config, city, neighborhood,
                                            block, space))
    return paths


# ----------------------------------------------------------------------
# Query builders (the four types of Section 5.1)
# ----------------------------------------------------------------------
def _prefix(config):
    return (
        f"/usRegion[@id='{config.region}']"
        f"/state[@id='{config.state}']"
        f"/county[@id='{config.county}']"
    )


def type1_query(config, city, neighborhood, block, selection="block"):
    """Type 1: one block, exact path from the root."""
    base = (
        f"{_prefix(config)}/city[@id='{city}']"
        f"/neighborhood[@id='{neighborhood}']/block[@id='{block}']"
    )
    return _apply_selection(base, selection)


def type2_query(config, city, neighborhood, block_a, block_b,
                selection="block"):
    """Type 2: two blocks of a single neighborhood."""
    base = (
        f"{_prefix(config)}/city[@id='{city}']"
        f"/neighborhood[@id='{neighborhood}']"
        f"/block[@id='{block_a}' or @id='{block_b}']"
    )
    return _apply_selection(base, selection)


def type3_query(config, city, neighborhood_a, neighborhood_b, block,
                selection="block"):
    """Type 3: two blocks from two neighborhoods (destination near the
    boundary) -- the shape of the paper's Figure 2 query."""
    base = (
        f"{_prefix(config)}/city[@id='{city}']"
        f"/neighborhood[@id='{neighborhood_a}' or @id='{neighborhood_b}']"
        f"/block[@id='{block}']"
    )
    return _apply_selection(base, selection)


def type4_query(config, city_a, city_b, neighborhood, block,
                selection="block"):
    """Type 4: two blocks from two different cities."""
    base = (
        f"{_prefix(config)}/city[@id='{city_a}' or @id='{city_b}']"
        f"/neighborhood[@id='{neighborhood}']/block[@id='{block}']"
    )
    return _apply_selection(base, selection)


def _apply_selection(base, selection):
    if selection == "block":
        return base
    if selection == "available":
        return base + "/parkingSpace[available='yes']"
    if selection == "cheap":
        return base + "/parkingSpace[available='yes'][price='0']"
    raise ValueError(f"unknown selection {selection!r}")
