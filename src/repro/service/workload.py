"""Query workloads QW-1..QW-4, QW-Mix and the skewed variants.

Section 5.3 evaluates five workloads: QW-1..QW-4 consist of randomly
generated queries of the corresponding type, and QW-Mix asks 40% type 1
and type 2 each, 15% type 3 and 5% type 4.  Section 5.4's skew
experiments use QW-Mix2 (50% type 1, 50% type 2) with 90% of the
queries targeting a single neighborhood.
"""

import random
import time

from repro.service import parking


class QueryWorkload:
    """A stream of queries drawn from a type mix, optionally skewed.

    *mix* maps query type (1..4) to probability.  With *skew* > 0, that
    fraction of the generated queries targets ``hot_neighborhood`` (in
    ``hot_city``); the rest are uniform.
    """

    def __init__(self, config, mix, selection="block", skew=0.0,
                 hot_city=None, hot_neighborhood=None, seed=None):
        self.config = config
        total = sum(mix.values())
        self.mix = {k: v / total for k, v in mix.items()}
        self.selection = selection
        self.skew = skew
        self.hot_city = hot_city or config.city_names()[0]
        self.hot_neighborhood = (hot_neighborhood
                                 or config.neighborhood_names()[0])
        self.rng = random.Random(seed)

    # -- factories for the paper's named workloads ----------------------
    @classmethod
    def qw(cls, config, query_type, **kwargs):
        """QW-1..QW-4: a single-type workload."""
        return cls(config, {query_type: 1.0}, **kwargs)

    @classmethod
    def qw_mix(cls, config, **kwargs):
        """QW-Mix: 40/40/15/5 over types 1-4 (Section 5.3)."""
        return cls(config, {1: 0.40, 2: 0.40, 3: 0.15, 4: 0.05}, **kwargs)

    @classmethod
    def qw_mix2(cls, config, **kwargs):
        """QW-Mix2: 50% type 1, 50% type 2 (Section 5.4)."""
        return cls(config, {1: 0.50, 2: 0.50}, **kwargs)

    # ------------------------------------------------------------------
    def _pick_type(self):
        roll = self.rng.random()
        acc = 0.0
        for query_type, probability in sorted(self.mix.items()):
            acc += probability
            if roll <= acc:
                return query_type
        return max(self.mix)

    def _pick_city(self):
        return self.rng.choice(self.config.city_names())

    def _pick_two(self, options):
        if len(options) < 2:
            return options[0], options[0]
        return self.rng.sample(options, 2)

    def sample(self):
        """Generate one query string (and its type) from the workload."""
        query_type = self._pick_type()
        config = self.config
        cities = config.city_names()
        neighborhoods = config.neighborhood_names()
        blocks = config.block_ids()
        hot = self.skew > 0 and self.rng.random() < self.skew

        if query_type == 1:
            city = self.hot_city if hot else self._pick_city()
            nb = self.hot_neighborhood if hot else self.rng.choice(neighborhoods)
            query = parking.type1_query(config, city, nb,
                                        self.rng.choice(blocks),
                                        selection=self.selection)
        elif query_type == 2:
            city = self.hot_city if hot else self._pick_city()
            nb = self.hot_neighborhood if hot else self.rng.choice(neighborhoods)
            block_a, block_b = self._pick_two(blocks)
            query = parking.type2_query(config, city, nb, block_a, block_b,
                                        selection=self.selection)
        elif query_type == 3:
            city = self._pick_city()
            nb_a, nb_b = self._pick_two(neighborhoods)
            query = parking.type3_query(config, city, nb_a, nb_b,
                                        self.rng.choice(blocks),
                                        selection=self.selection)
        elif query_type == 4:
            city_a, city_b = self._pick_two(cities)
            query = parking.type4_query(config, city_a, city_b,
                                        self.rng.choice(neighborhoods),
                                        self.rng.choice(blocks),
                                        selection=self.selection)
        else:
            raise ValueError(f"unknown query type {query_type}")
        return query, query_type

    def __call__(self):
        """Callable form returning just the query string."""
        return self.sample()[0]

    def take(self, count):
        """A list of *count* (query, type) samples."""
        return [self.sample() for _ in range(count)]


def run_live(cluster, workload, count, now=None, clock=time.monotonic,
             query_log=None):
    """Drive *count* workload queries against a **live** cluster.

    The simulator produces the paper's throughput/latency numbers by
    replaying traces offline; this is the online counterpart -- it
    poses real queries, times each one on the wall clock, and returns
    ``(metrics, report)`` where *metrics* is a
    :class:`repro.sim.metrics.WorkloadMetrics` (same summary shape as
    the simulated runs) and *report* is the cluster-wide snapshot from
    :func:`repro.obs.registry.cluster_metrics` taken at the end.

    With tracing enabled each query's trace id is appended to
    ``report["traces"]`` so individual executions can be pulled out of
    the tracer afterwards.

    *query_log* (a :class:`repro.core.semcache.QueryLog`) captures
    every posed query; saved logs feed cache prewarming
    (``Cluster.prewarm`` / ``repro.core.semcache.prewarm``) so a cold
    deployment starts with the caches live traffic would have built.
    """
    from repro.obs.registry import cluster_metrics
    from repro.obs.tracing import TRACER
    from repro.sim.metrics import WorkloadMetrics

    metrics = WorkloadMetrics()
    metrics.begin_window(clock())
    traces = []
    for _ in range(count):
        query, query_type = workload.sample()
        if query_log is not None:
            query_log.record(query, query_type=query_type)
        started = clock()
        with TRACER.span("workload-query", tags={"type": query_type}) \
                as span:
            cluster.query(query, now=now)
        finished = clock()
        metrics.record(finished, finished - started, query_type=query_type)
        if span.context is not None:
            traces.append(span.context.trace_id)
    metrics.close_window(clock())
    report = cluster_metrics(cluster)
    report["workload"] = metrics.summary()
    if traces:
        report["traces"] = traces
    return metrics, report


def _percentile(sorted_values, fraction):
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class OpenLoopResult:
    """What one :func:`run_open_loop` run measured.

    Latencies are measured from each request's *scheduled arrival
    time*, not from when a worker got around to sending it -- under
    saturation the queueing delay IS the latency, and hiding it is the
    classic closed-loop mistake (coordinated omission).
    """

    def __init__(self, target_qps, duration, offered, completed, errors,
                 dropped, latencies, max_in_flight):
        self.target_qps = target_qps
        self.duration = duration
        self.offered = offered
        self.completed = completed
        self.errors = errors
        self.dropped = dropped
        self.latencies = sorted(latencies)
        self.max_in_flight = max_in_flight

    @property
    def achieved_qps(self):
        """Successful completions per second of offered-load window."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def sustained(self):
        """Did the system keep up with the offered rate?

        Sustained means (nearly) every offered request completed
        successfully -- 95% is the tolerance for scheduler jitter at
        the window edges, not an error budget.
        """
        if self.offered == 0:
            return False
        return self.completed / self.offered >= 0.95

    def percentile(self, fraction):
        return _percentile(self.latencies, fraction)

    def summary(self):
        return {
            "target_qps": self.target_qps,
            "achieved_qps": round(self.achieved_qps, 2),
            "sustained": self.sustained,
            "offered": self.offered,
            "completed": self.completed,
            "errors": self.errors,
            "dropped": self.dropped,
            "max_in_flight": self.max_in_flight,
            "latency_ms": {
                "p50": round(self.percentile(0.50) * 1000, 3),
                "p99": round(self.percentile(0.99) * 1000, 3),
                "max": round((self.latencies[-1] if self.latencies
                              else 0.0) * 1000, 3),
            },
        }


def run_open_loop(cluster, workload, target_qps, duration, seed=0,
                  now=None, clock=time.monotonic, max_workers=64,
                  drain_timeout=15.0):
    """Offer *workload* queries at *target_qps* for *duration* seconds.

    Unlike :func:`run_live` (closed-loop: the next query waits for the
    previous answer, so a slow system conveniently slows the load
    down), this is an **open-loop** generator: arrivals follow a seeded
    Poisson process at the target rate *regardless of completions*,
    the way independent wide-area clients actually behave.  A system
    that cannot keep up accumulates a backlog and its measured latency
    grows without bound -- which is the point.

    *workload* may be a :class:`QueryWorkload` (each arrival routes
    its query client-side, as ``query_via_messages`` does, and fires
    the user :class:`~repro.net.messages.QueryMessage` at the routed
    site) or an :class:`UpdateWorkload` (each arrival fires an
    :class:`~repro.net.messages.UpdateMessage` at the owning site --
    the wide-area ingest pattern, fanning out across every leaf).
    Either way the request goes to the wire:

    * on a pipelining transport (``request_async``), in-flight requests
      cost a correlation-table entry -- one dispatcher thread sustains
      hundreds of outstanding frames;
    * on the serial transport, each in-flight request needs a worker
      thread and its own pooled connection (*max_workers* of them) --
      arrivals beyond that queue, and their queueing time is charged to
      their latency, per coordinated-omission rules.

    Returns an :class:`OpenLoopResult`.
    """
    import threading
    from concurrent.futures import ThreadPoolExecutor

    from repro.net.errors import NetError
    from repro.net.messages import QueryMessage, UpdateMessage

    network = cluster.network
    use_async = (hasattr(network, "request_async")
                 and getattr(network, "pipelining", False))

    rng = random.Random(seed)
    arrivals = []  # offsets from window start
    offset = 0.0
    while offset < duration:
        arrivals.append(offset)
        offset += rng.expovariate(target_qps)

    def _owner_site(path):
        """The site owning *path*: longest assigned prefix wins."""
        best_site, best_len = None, -1
        for site, prefixes in cluster.plan.assignments.items():
            for prefix in prefixes:
                if len(prefix) > best_len and path[:len(prefix)] == prefix:
                    best_site, best_len = site, len(prefix)
        return best_site

    plan = []
    for _ in arrivals:
        sampled = workload.sample()
        if isinstance(sampled[0], str):
            query, qtype = sampled
            # Aggregate/boolean samples (ScenarioWorkload's rollups) go
            # down the scalar path; location paths stay user queries.
            scalar = qtype in ("aggregate", "scalar", "boolean")
            plan.append((cluster.route_query(query)[0],
                         lambda q=query, s=scalar: QueryMessage(
                             q, now=now, scalar=s, user=not s,
                             sender="client")))
        else:
            path, values = sampled
            plan.append((_owner_site(path),
                         lambda p=path, v=values: UpdateMessage(
                             p, values=v, sender="client")))

    lock = threading.Lock()
    latencies = []
    state = {"completed": 0, "errors": 0, "in_flight": 0,
             "max_in_flight": 0}
    done = threading.Event()

    def begin():
        with lock:
            state["in_flight"] += 1
            if state["in_flight"] > state["max_in_flight"]:
                state["max_in_flight"] = state["in_flight"]

    def finish(scheduled, ok):
        elapsed = clock() - scheduled
        with lock:
            state["in_flight"] -= 1
            if ok:
                state["completed"] += 1
                latencies.append(elapsed)
            else:
                state["errors"] += 1
            if state["in_flight"] == 0:
                done.set()

    def fire_async(site, message, scheduled):
        begin()
        try:
            future = network.request_async("client", site, message)
        except (OSError, NetError):
            finish(scheduled, ok=False)
            return

        def completed(fut):
            ok = (fut.exception() is None
                  and getattr(fut.result(), "kind", "") != "error")
            finish(scheduled, ok)

        future.add_done_callback(completed)

    def fire_sync(site, message, scheduled):
        try:
            reply = network.request("client", site, message)
            ok = reply is not None and getattr(reply, "kind", "") != "error"
        except (OSError, NetError):
            ok = False
        finish(scheduled, ok)

    executor = None
    if not use_async:
        executor = ThreadPoolExecutor(max_workers=max_workers,
                                      thread_name_prefix="openloop")
    start = clock()
    try:
        for offset, (site, build) in zip(arrivals, plan):
            scheduled = start + offset
            delay = scheduled - clock()
            if delay > 0:
                time.sleep(delay)
            message = build()
            if use_async:
                fire_async(site, message, scheduled)
            else:
                begin()
                executor.submit(fire_sync, site, message, scheduled)
        # Drain: requests offered inside the window may complete after
        # it; they count.  Whatever is still unfinished past the grace
        # period is dropped (the backlog of a saturated run).
        deadline = clock() + drain_timeout
        while clock() < deadline:
            with lock:
                if state["in_flight"] == 0:
                    break
            done.clear()
            done.wait(min(0.25, max(0.0, deadline - clock())))
    finally:
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    with lock:
        dropped = state["in_flight"]
        return OpenLoopResult(
            target_qps=target_qps, duration=duration,
            offered=len(arrivals), completed=state["completed"],
            errors=state["errors"], dropped=dropped,
            latencies=list(latencies),
            max_in_flight=state["max_in_flight"])


def max_sustained_qps(run, rates):
    """The highest of *rates* the system kept up with.

    *run* is ``rate -> OpenLoopResult``; rates are tried in increasing
    order and the scan stops after two consecutive unsustained rates
    (a saturated system only gets worse).  Returns ``(best_rate,
    {rate: result})`` -- ``best_rate`` is 0.0 when nothing held.
    """
    best = 0.0
    results = {}
    misses = 0
    for rate in sorted(rates):
        result = run(rate)
        results[rate] = result
        if result.sustained:
            best = rate
            misses = 0
        else:
            misses += 1
            if misses >= 2:
                break
    return best, results


class UpdateWorkload:
    """A stream of random sensor updates over all parking spaces."""

    def __init__(self, config, seed=None):
        self.config = config
        self.paths = parking.all_space_paths(config)
        self.rng = random.Random(seed)

    def sample(self):
        """One ``(id_path, values)`` update."""
        path = self.rng.choice(self.paths)
        available = "yes" if self.rng.random() < 0.5 else "no"
        return path, {"available": available}

    def take(self, count):
        return [self.sample() for _ in range(count)]
