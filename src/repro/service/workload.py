"""Query workloads QW-1..QW-4, QW-Mix and the skewed variants.

Section 5.3 evaluates five workloads: QW-1..QW-4 consist of randomly
generated queries of the corresponding type, and QW-Mix asks 40% type 1
and type 2 each, 15% type 3 and 5% type 4.  Section 5.4's skew
experiments use QW-Mix2 (50% type 1, 50% type 2) with 90% of the
queries targeting a single neighborhood.
"""

import random
import time

from repro.service import parking


class QueryWorkload:
    """A stream of queries drawn from a type mix, optionally skewed.

    *mix* maps query type (1..4) to probability.  With *skew* > 0, that
    fraction of the generated queries targets ``hot_neighborhood`` (in
    ``hot_city``); the rest are uniform.
    """

    def __init__(self, config, mix, selection="block", skew=0.0,
                 hot_city=None, hot_neighborhood=None, seed=None):
        self.config = config
        total = sum(mix.values())
        self.mix = {k: v / total for k, v in mix.items()}
        self.selection = selection
        self.skew = skew
        self.hot_city = hot_city or config.city_names()[0]
        self.hot_neighborhood = (hot_neighborhood
                                 or config.neighborhood_names()[0])
        self.rng = random.Random(seed)

    # -- factories for the paper's named workloads ----------------------
    @classmethod
    def qw(cls, config, query_type, **kwargs):
        """QW-1..QW-4: a single-type workload."""
        return cls(config, {query_type: 1.0}, **kwargs)

    @classmethod
    def qw_mix(cls, config, **kwargs):
        """QW-Mix: 40/40/15/5 over types 1-4 (Section 5.3)."""
        return cls(config, {1: 0.40, 2: 0.40, 3: 0.15, 4: 0.05}, **kwargs)

    @classmethod
    def qw_mix2(cls, config, **kwargs):
        """QW-Mix2: 50% type 1, 50% type 2 (Section 5.4)."""
        return cls(config, {1: 0.50, 2: 0.50}, **kwargs)

    # ------------------------------------------------------------------
    def _pick_type(self):
        roll = self.rng.random()
        acc = 0.0
        for query_type, probability in sorted(self.mix.items()):
            acc += probability
            if roll <= acc:
                return query_type
        return max(self.mix)

    def _pick_city(self):
        return self.rng.choice(self.config.city_names())

    def _pick_two(self, options):
        if len(options) < 2:
            return options[0], options[0]
        return self.rng.sample(options, 2)

    def sample(self):
        """Generate one query string (and its type) from the workload."""
        query_type = self._pick_type()
        config = self.config
        cities = config.city_names()
        neighborhoods = config.neighborhood_names()
        blocks = config.block_ids()
        hot = self.skew > 0 and self.rng.random() < self.skew

        if query_type == 1:
            city = self.hot_city if hot else self._pick_city()
            nb = self.hot_neighborhood if hot else self.rng.choice(neighborhoods)
            query = parking.type1_query(config, city, nb,
                                        self.rng.choice(blocks),
                                        selection=self.selection)
        elif query_type == 2:
            city = self.hot_city if hot else self._pick_city()
            nb = self.hot_neighborhood if hot else self.rng.choice(neighborhoods)
            block_a, block_b = self._pick_two(blocks)
            query = parking.type2_query(config, city, nb, block_a, block_b,
                                        selection=self.selection)
        elif query_type == 3:
            city = self._pick_city()
            nb_a, nb_b = self._pick_two(neighborhoods)
            query = parking.type3_query(config, city, nb_a, nb_b,
                                        self.rng.choice(blocks),
                                        selection=self.selection)
        elif query_type == 4:
            city_a, city_b = self._pick_two(cities)
            query = parking.type4_query(config, city_a, city_b,
                                        self.rng.choice(neighborhoods),
                                        self.rng.choice(blocks),
                                        selection=self.selection)
        else:
            raise ValueError(f"unknown query type {query_type}")
        return query, query_type

    def __call__(self):
        """Callable form returning just the query string."""
        return self.sample()[0]

    def take(self, count):
        """A list of *count* (query, type) samples."""
        return [self.sample() for _ in range(count)]


def run_live(cluster, workload, count, now=None, clock=time.monotonic):
    """Drive *count* workload queries against a **live** cluster.

    The simulator produces the paper's throughput/latency numbers by
    replaying traces offline; this is the online counterpart -- it
    poses real queries, times each one on the wall clock, and returns
    ``(metrics, report)`` where *metrics* is a
    :class:`repro.sim.metrics.WorkloadMetrics` (same summary shape as
    the simulated runs) and *report* is the cluster-wide snapshot from
    :func:`repro.obs.registry.cluster_metrics` taken at the end.

    With tracing enabled each query's trace id is appended to
    ``report["traces"]`` so individual executions can be pulled out of
    the tracer afterwards.
    """
    from repro.obs.registry import cluster_metrics
    from repro.obs.tracing import TRACER
    from repro.sim.metrics import WorkloadMetrics

    metrics = WorkloadMetrics()
    metrics.begin_window(clock())
    traces = []
    for _ in range(count):
        query, query_type = workload.sample()
        started = clock()
        with TRACER.span("workload-query", tags={"type": query_type}) \
                as span:
            cluster.query(query, now=now)
        finished = clock()
        metrics.record(finished, finished - started, query_type=query_type)
        if span.context is not None:
            traces.append(span.context.trace_id)
    metrics.close_window(clock())
    report = cluster_metrics(cluster)
    report["workload"] = metrics.summary()
    if traces:
        report["traces"] = traces
    return metrics, report


class UpdateWorkload:
    """A stream of random sensor updates over all parking spaces."""

    def __init__(self, config, seed=None):
        self.config = config
        self.paths = parking.all_space_paths(config)
        self.rng = random.Random(seed)

    def sample(self):
        """One ``(id_path, values)`` update."""
        path = self.rng.choice(self.paths)
        available = "yes" if self.rng.random() < 0.5 else "no"
        return path, {"available": available}

    def take(self, count):
        return [self.sample() for _ in range(count)]
