"""Application services: Parking Space Finder and coastal monitoring."""

from repro.service.coastal import (
    CoastalConfig,
    build_coastal_document,
    high_risk_query,
    region_alert_query,
    station_path,
)
from repro.service.parking import (
    ParkingConfig,
    all_space_paths,
    block_path,
    build_parking_document,
    city_path,
    neighborhood_path,
    space_path,
    type1_query,
    type2_query,
    type3_query,
    type4_query,
)
from repro.service.workload import QueryWorkload, UpdateWorkload, run_live

__all__ = [
    "ParkingConfig",
    "build_parking_document",
    "all_space_paths",
    "city_path",
    "neighborhood_path",
    "block_path",
    "space_path",
    "type1_query",
    "type2_query",
    "type3_query",
    "type4_query",
    "QueryWorkload",
    "UpdateWorkload",
    "run_live",
    "CoastalConfig",
    "build_coastal_document",
    "station_path",
    "high_risk_query",
    "region_alert_query",
]
