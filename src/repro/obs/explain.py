"""EXPLAIN: how a site would answer a query, without guessing.

``OrganizingAgent.explain(query)`` (and ``Cluster.explain``, which
adds routing) runs a real QEG pass over the site's current fragment
with an observer attached and reports

* the routed LCA (id path + owning site, cluster level),
* the per-IDable-node decisions QEG took -- ``owned`` / ``cache-hit``
  / ``stale`` / ``subquery`` / ``pruned`` -- in visit order, and
* the emitted subquery plan, each ask resolved to its target site.

The default mode touches no remote site: the plan is exactly what the
gather driver would dispatch in its first round from the current cache
state.  ``analyze=True`` additionally *runs* the gather and appends
what was actually dispatched (every round, every subquery, terminal
failures included) -- the live-system analogue of ``EXPLAIN ANALYZE``.

Reports render as text (:meth:`ExplainReport.render`) and as JSON
(:meth:`ExplainReport.to_dict` / :meth:`ExplainReport.to_json`).
"""

import json

from repro.core.answer import Subquery
from repro.core.gather import SubqueryFailure
from repro.core.idable import id_path_of
from repro.core.qeg import run_qeg
from repro.core.semcache import canonicalize
from repro.core.status import Status
from repro.xpath import parser as xpath_parser
from repro.xpath.analysis import extract_id_path
from repro.xpath.ast import FunctionCall, LocationPath

#: Decision labels, the EXPLAIN vocabulary.
OWNED = "owned"
CACHE_HIT = "cache-hit"
STALE = "stale"
SUBQUERY = "subquery"
PRUNED = "pruned"
MATCH = "match"


def _format_id_path(id_path):
    return "/".join(f"{tag}={identifier}" for tag, identifier in id_path)


class ExplainObserver:
    """Collects QEG decisions during an explain pass.

    Wired into :func:`repro.core.qeg.run_qeg` via its ``observer``
    hook: ``note_ask`` fires when a subquery is emitted, and
    ``note_decision`` fires after each IDable-node match attempt with
    the node, its status and the walker's outcome.
    """

    def __init__(self):
        self.decisions = []
        self._last_ask_reason = None

    def note_ask(self, subquery):
        self._last_ask_reason = subquery.reason

    def note_decision(self, node, status, outcome, item_index):
        if outcome == "ask":
            if self._last_ask_reason == Subquery.STALE:
                decision = STALE
            else:
                decision = SUBQUERY
        elif outcome == "no":
            decision = PRUNED
        elif status is Status.OWNED:
            decision = OWNED
        elif status is Status.COMPLETE:
            decision = CACHE_HIT
        else:
            decision = MATCH
        self.decisions.append({
            "id_path": [list(entry) for entry in id_path_of(node)],
            "status": status.value,
            "decision": decision,
            "item": item_index,
        })
        self._last_ask_reason = None


class ExplainReport:
    """The structured output of an EXPLAIN run."""

    def __init__(self, query, site, lca_path, decisions, plan,
                 local_results, routed_site=None, analyze=None,
                 cache=None, replication=None, aggregation=None,
                 rebalance=None):
        self.query = query
        self.site = site
        self.lca_path = tuple(tuple(entry) for entry in lca_path)
        self.decisions = decisions
        self.plan = plan
        self.local_results = local_results
        self.routed_site = routed_site
        self.analyze = analyze
        #: Semantic-cache view: canonical/bucket keys, tolerance
        #: mapping, and the aggregate-cache entry that would serve this
        #: query (``None`` when the subsystem is disabled).
        self.cache = cache
        #: Read-replication view: k, this site's ring peers, and the
        #: replica sets it holds (``None`` when the subsystem is off).
        self.replication = replication
        #: Hierarchical-aggregation view: whether the query rolls up
        #: through summaries, its summary key, and the cached entry
        #: that would serve it (``None`` when the subsystem is off).
        self.aggregation = aggregation
        #: Recent ownership migrations at this site touching the
        #: query's LCA ("ownership moved" annotations; ``None`` when
        #: the site has seen none).
        self.rebalance = rebalance

    @property
    def complete_locally(self):
        """Whether the current cache state answers without the network."""
        return not self.plan

    def planned_queries(self):
        return [entry["query"] for entry in self.plan]

    def dispatched_queries(self):
        """Queries the analyzed gather actually sent (analyze mode)."""
        if self.analyze is None:
            return []
        return [entry["query"] for entry in self.analyze["dispatched"]]

    def to_dict(self):
        out = {
            "query": self.query,
            "site": self.site,
            "routed_site": self.routed_site,
            "lca_path": [list(entry) for entry in self.lca_path],
            "complete_locally": self.complete_locally,
            "local_results": self.local_results,
            "decisions": list(self.decisions),
            "plan": list(self.plan),
        }
        if self.cache is not None:
            out["cache"] = self.cache
        if self.replication is not None:
            out["replication"] = self.replication
        if self.aggregation is not None:
            out["aggregation"] = self.aggregation
        if self.rebalance is not None:
            out["rebalance"] = self.rebalance
        if self.analyze is not None:
            out["analyze"] = self.analyze
        return out

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self):
        """The text rendering (``psql``-style, one section per part)."""
        lines = [f"EXPLAIN {self.query}"]
        routed = self.routed_site or self.site
        lines.append(
            f"  routed to site {routed!r}"
            f" (LCA {_format_id_path(self.lca_path) or '/'})")
        lines.append("  decisions:")
        if not self.decisions:
            lines.append("    (no IDable node matched)")
        for entry in self.decisions:
            path = _format_id_path(entry["id_path"])
            lines.append(
                f"    {path:<50} {entry['status']:<12} "
                f"-> {entry['decision']}")
        if self.plan:
            lines.append("  subquery plan:")
            for entry in self.plan:
                target = entry["target"]
                where = f"@{target}" if target is not None else "@<retired>"
                scalar = " scalar" if entry["scalar"] else ""
                lines.append(
                    f"    {where:<12} {entry['query']}"
                    f"  [{entry['reason']}{scalar}]")
                if entry.get("wire_query"):
                    lines.append(
                        f"    {'':<12} ~> {entry['wire_query']}"
                        "  [freshness bucket]")
                if entry.get("replicas"):
                    peers = ", ".join(entry["replicas"])
                    lines.append(
                        f"    {'':<12} failover: {peers}")
        else:
            lines.append("  subquery plan: (none -- answerable locally)")
        if self.cache is not None and self.cache.get("enabled"):
            lines.append("  semantic cache:")
            lines.append(f"    canonical: {self.cache.get('canonical_key')}")
            if self.cache.get("bucketed"):
                pairs = ", ".join(
                    f"{orig:g}s->{bucket:g}s"
                    for orig, bucket in self.cache.get("tolerances", []))
                lines.append(
                    f"    bucket:    {self.cache.get('bucket_key')}"
                    f"  ({pairs})")
            aggregate = self.cache.get("aggregate")
            if aggregate is not None:
                kind = ("bucket-coalesced hit" if aggregate["coalesced"]
                        else "hit")
                lines.append(
                    f"    aggregate: cached ({kind} candidate, "
                    f"age {aggregate['age']:g}s, "
                    f"hits {aggregate['hits']})")
        if self.replication is not None:
            peers = ", ".join(self.replication.get("peers", [])) or "(none)"
            lines.append(
                f"  replication: k={self.replication.get('k')}"
                f" peers={peers}")
        if self.aggregation is not None:
            agg = self.aggregation
            if agg.get("shape") is None:
                lines.append("  aggregation: (not an aggregate query)")
            elif not agg.get("supported"):
                lines.append(
                    f"  aggregation: {agg['shape']}() via naive gather"
                    f" ({agg.get('problem')})")
            else:
                lines.append(
                    f"  aggregation: {agg['shape']}() via summary rollup")
                lines.append(f"    summary:   {agg['summary_key']}")
                entry = agg.get("summary")
                if entry is not None:
                    bound = entry.get("tolerance")
                    bound_text = (f", bound {bound:g}s"
                                  if bound is not None else "")
                    lines.append(
                        f"    summary-cache hit candidate "
                        f"(age {entry['age']:g}s, hits {entry['hits']}"
                        f"{bound_text})")
                else:
                    lines.append(
                        "    summary-cache miss (rollup would compute)")
        if self.rebalance is not None:
            lines.append("  rebalance:")
            for entry in self.rebalance:
                arrow = "<-" if entry["direction"] == "in" else "->"
                moved = (" [ownership moved]"
                         if entry.get("covers_query") else "")
                paths = ", ".join(
                    _format_id_path(path) for path in entry["paths"])
                lines.append(
                    f"    {arrow} {entry['peer']}: {paths}{moved}")
        lines.append(f"  local results: {self.local_results}")
        if self.analyze is not None:
            a = self.analyze
            lines.append(
                f"  analyze: rounds={a['rounds']}"
                f" dispatched={len(a['dispatched'])}"
                f" complete={a['complete']}")
            for entry in a["dispatched"]:
                target = entry["target"]
                where = f"@{target}" if target is not None else "@<retired>"
                failed = " FAILED" if entry.get("failed") else ""
                lines.append(
                    f"    {where:<12} {entry['query']}"
                    f"  [{entry['reason']}]{failed}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"ExplainReport({self.query!r}, site={self.site!r}, "
                f"plan={len(self.plan)} subqueries)")


def _resolve_target(agent, anchor_path):
    """Best-effort owner resolution for a plan entry (``None`` if
    retired from DNS)."""
    from repro.net.errors import NameNotFound

    try:
        name = agent.resolver.server.name_for(anchor_path)
        target, _hops = agent.resolver.resolve(name)
    except NameNotFound:
        return None
    return target


def _plan_entry(agent, subquery, failed=None):
    entry = {
        "query": subquery.query,
        "anchor_path": [list(e) for e in subquery.anchor_path],
        "reason": subquery.reason,
        "scalar": subquery.scalar,
        "target": _resolve_target(agent, subquery.anchor_path),
    }
    wire = _bucketed_wire(agent.driver, subquery)
    if wire is not None:
        entry["wire_query"] = wire
    manager = getattr(agent, "replication", None)
    if manager is not None and entry["target"] is not None and \
            not subquery.scalar:
        from repro.replication import replica_peers

        entry["replicas"] = replica_peers(
            entry["target"], manager.topology, manager.config.k)
    if failed is not None:
        entry["failed"] = failed
    return entry


def _bucketed_wire(driver, subquery):
    """The bucket-loosened wire spelling the driver would dispatch,
    or ``None`` when the ask goes out verbatim."""
    config = driver.semcache
    if not config.enabled or config.buckets is None or subquery.scalar:
        return None
    try:
        canon = canonicalize(subquery.query, buckets=config.buckets)
    except Exception:
        return None
    return canon.bucket_key if canon.bucketed else None


def _cache_section(driver, source, now):
    """The semantic-cache view of *source* for the report.

    Uses :meth:`SemanticCache.peek` so building an EXPLAIN never
    distorts the very hit/miss counters it reports.
    """
    config = driver.semcache
    if not config.enabled:
        return {"enabled": False}
    try:
        canon = canonicalize(source, buckets=config.buckets)
    except Exception:
        return {"enabled": True}
    info = {
        "enabled": True,
        "canonical_key": canon.key,
        "bucket_key": canon.bucket_key,
        "bucketed": canon.bucketed,
        "tolerances": [[orig, bucket]
                       for orig, bucket in canon.tolerances],
    }
    entry = driver.aggregates.cache.peek(canon.bucket_key)
    if entry is not None:
        info["aggregate"] = {
            "age": round(entry.age(now), 3),
            "coalesced": entry.exact_key != canon.key,
            "hits": entry.hits,
        }
    return info


def _replication_section(agent):
    """The read-replication view for the report (``None`` when off)."""
    manager = getattr(agent, "replication", None)
    if manager is None:
        return None
    counters = manager.counters()
    return {
        "enabled": True,
        "k": manager.config.k,
        "peers": list(manager.peers()),
        "replicas_held": counters.get("replicas_held", {}),
    }


def _aggregation_section(agent, source, now):
    """The hierarchical-aggregation view (``None`` when off).

    Rebuilds the manager's plan side-effect-free and ``peek``s the
    summary cache, so -- like :func:`_cache_section` -- an EXPLAIN
    never distorts the hit/miss counters it reports.
    """
    manager = getattr(agent, "aggregation", None)
    if manager is None:
        return None
    from repro.agg import SHAPES, summary_key

    info = {"enabled": True, "shape": None,
            "summaries_held": len(manager.summaries),
            "derived_sensors": sorted(manager.derived)}
    try:
        canon = canonicalize(source, buckets=manager.config.buckets)
    except Exception:
        return info
    ast = canon.bucket_ast
    if not isinstance(ast, FunctionCall) or ast.name not in SHAPES:
        return info
    info["shape"] = ast.name
    if len(ast.arguments) != 1 or \
            not isinstance(ast.arguments[0], LocationPath) or \
            not ast.arguments[0].absolute:
        info["supported"] = False
        info["problem"] = "argument is not an absolute path"
        return info
    inner = ast.arguments[0]
    anchor = tuple(tuple(entry) for entry in extract_id_path(inner))
    problem = manager._support_problem(inner, anchor)
    if problem is not None:
        info["supported"] = False
        info["problem"] = problem
        return info
    info["supported"] = True
    key = summary_key(anchor, inner)
    info["summary_key"] = key
    entry = manager.summaries.peek(key)
    if entry is not None:
        info["summary"] = {
            "age": round(entry.age(now), 3),
            "hits": entry.hits,
            "tolerance": entry.tolerance,
        }
    return info


def _rebalance_section(agent, lca_path):
    """Recent ownership migrations at *agent* (``None`` when none).

    Each entry of the OA's ``migration_log`` is reported with its
    direction and peer; entries whose paths overlap the query's LCA are
    flagged ``covers_query`` -- the "ownership moved" annotation that
    explains why a fragment this site used to answer now routes
    elsewhere (or vice versa).
    """
    log = list(getattr(agent, "migration_log", ()))
    if not log:
        return None
    lca = tuple(tuple(entry) for entry in lca_path)

    def overlaps(path):
        path = tuple(tuple(entry) for entry in path)
        return path[:len(lca)] == lca or lca[:len(path)] == path

    return [
        {
            "direction": entry["direction"],
            "peer": entry["peer"],
            "paths": [[list(e) for e in path] for path in entry["paths"]],
            "covers_query": any(overlaps(path) for path in entry["paths"]),
        }
        for entry in log
    ]


def _extraction_lca(query):
    ast = xpath_parser.parse(query) if isinstance(query, str) else query
    if isinstance(ast, FunctionCall) and ast.arguments and \
            isinstance(ast.arguments[0], LocationPath):
        ast = ast.arguments[0]
    try:
        return extract_id_path(ast)
    except Exception:
        return ()


def build_explain(agent, query, analyze=False, now=None,
                  routed_site=None):
    """Build an :class:`ExplainReport` for *query* at *agent*.

    The explain pass is read-only: QEG walks the site fragment and the
    answer fragment it builds is discarded.  With *analyze* the real
    gather runs afterwards (merging results into the cache as any
    query would) and the dispatched subqueries are appended.
    """
    driver = agent.driver
    source = query if isinstance(query, str) else query.unparse()
    ast = xpath_parser.parse(query) if isinstance(query, str) else query
    if isinstance(ast, FunctionCall) and ast.arguments and \
            isinstance(ast.arguments[0], LocationPath):
        # A scalar wrapper gathers its inner path; explain that path
        # (the wrapper itself is evaluated locally over the result).
        ast = ast.arguments[0]
    pattern = driver.compile(ast)
    if now is None:
        now = agent.clock()
    observer = ExplainObserver()
    result = run_qeg(
        agent.database, pattern, now=now,
        nesting_strategy=driver.nesting_strategy,
        generalization=driver.generalization,
        observer=observer,
    )
    plan = [_plan_entry(agent, subquery) for subquery in result.subqueries]
    analysis = None
    if analyze:
        outcome = driver.gather(pattern, now=now)
        failed_keys = {
            (f.subquery.query, f.subquery.scalar) for f in outcome.failures
        }
        analysis = {
            "rounds": outcome.rounds,
            "complete": outcome.complete,
            "has_answer": outcome.wire_answer is not None,
            "dispatched": [
                _plan_entry(
                    agent, subquery,
                    failed=(subquery.query, subquery.scalar) in failed_keys,
                )
                for subquery in outcome.subqueries_sent
                if not isinstance(subquery, SubqueryFailure)
            ],
        }
    lca_path = _extraction_lca(source)
    return ExplainReport(
        query=source,
        site=agent.site_id,
        lca_path=lca_path,
        decisions=observer.decisions,
        plan=plan,
        local_results=result.stats.get("results_local", 0),
        routed_site=routed_site,
        analyze=analysis,
        cache=_cache_section(driver, source, now),
        replication=_replication_section(agent),
        aggregation=_aggregation_section(agent, source, now),
        rebalance=_rebalance_section(agent, lca_path),
    )
