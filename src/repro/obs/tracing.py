"""Distributed query tracing: spans across sites, one tree per query.

The simulator already reconstructs per-query RPC trees offline
(:mod:`repro.sim.trace`); this module produces the same shape *online*,
from the real query path.  A :class:`Tracer` records :class:`Span`
objects -- named, timed intervals attributed to a site -- and a
:class:`TraceContext` (``trace_id`` + ``span_id``) rides on wire
messages so spans opened while *handling* a message parent-link to the
span that *sent* it, across sites and transports.

Design constraints:

* **Off by default, invisible when off.**  ``TRACER.span(...)`` returns
  a shared no-op context manager when tracing is disabled, and no
  trace context is attached to messages -- fault-free wire traffic is
  byte-identical to an untraced run.
* **Ambient propagation.**  The current span lives in a
  :class:`contextvars.ContextVar`; nested ``span()`` calls parent-link
  automatically.  Fan-out worker threads do not inherit context, so the
  dispatch paths wrap their callables with :func:`propagate`.
* **Cross-site assembly.**  Every span is self-describing
  (``trace_id``/``span_id``/``parent_id``/``site``), so span sets
  exported by several sites merge into one tree with
  :func:`assemble_trace`, and :func:`to_trace_node` converts that tree
  into the simulator's :class:`~repro.sim.trace.TraceNode` shape.
"""

import contextvars
import itertools
import os
import threading
import time

_CURRENT_SPAN = contextvars.ContextVar("repro-obs-current-span",
                                       default=None)


class TraceContext:
    """The wire-portable identity of a span: ``trace_id`` + ``span_id``.

    Encoded as ``"<trace_id>:<span_id>"`` in the optional ``trace``
    attribute of a message envelope (see
    :mod:`repro.net.messages` and ``docs/WIRE_FORMAT.md``).
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id, span_id):
        self.trace_id = trace_id
        self.span_id = span_id

    def encode(self):
        return f"{self.trace_id}:{self.span_id}"

    @classmethod
    def decode(cls, text):
        trace_id, _, span_id = text.partition(":")
        if not trace_id or not span_id:
            return None
        return cls(trace_id, span_id)

    def __eq__(self, other):
        return (isinstance(other, TraceContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id)

    def __hash__(self):
        return hash((self.trace_id, self.span_id))

    def __repr__(self):
        return f"TraceContext({self.encode()!r})"


class Span:
    """One named, timed interval of work at one site."""

    __slots__ = ("trace_id", "span_id", "parent_id", "site", "name",
                 "started", "ended", "tags")

    def __init__(self, trace_id, span_id, parent_id, site, name,
                 started=0.0, ended=None, tags=None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.site = site
        self.name = name
        self.started = started
        self.ended = ended
        self.tags = dict(tags or {})

    @property
    def context(self):
        return TraceContext(self.trace_id, self.span_id)

    @property
    def duration(self):
        if self.ended is None:
            return 0.0
        return self.ended - self.started

    def set_tag(self, key, value):
        self.tags[key] = value

    def to_dict(self):
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "site": self.site,
            "name": self.name,
            "started": self.started,
            "ended": self.ended,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            site=data.get("site"),
            name=data.get("name", ""),
            started=data.get("started", 0.0),
            ended=data.get("ended"),
            tags=data.get("tags") or {},
        )

    def __repr__(self):
        return (f"Span({self.name!r}, site={self.site!r}, "
                f"id={self.span_id}, parent={self.parent_id})")


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    context = None
    trace_id = None
    span_id = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set_tag(self, key, value):
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens, activates and records one span."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span
        self._token = None

    @property
    def context(self):
        return self._span.context

    @property
    def trace_id(self):
        return self._span.trace_id

    @property
    def span_id(self):
        return self._span.span_id

    def set_tag(self, key, value):
        self._span.set_tag(key, value)

    def __enter__(self):
        self._token = _CURRENT_SPAN.set(self._span)
        return self

    def __exit__(self, exc_type, exc_value, _traceback):
        _CURRENT_SPAN.reset(self._token)
        self._span.ended = self._tracer.clock()
        if exc_type is not None:
            self._span.tags.setdefault(
                "error", f"{exc_type.__name__}: {exc_value}")
        self._tracer._record(self._span)
        return False


class Tracer:
    """Span factory + bounded in-memory collector (thread-safe).

    One tracer serves every site in the process (all in-process
    deployments share :data:`TRACER`); a genuinely multi-process
    deployment runs one per process and merges exports with
    :func:`assemble_trace`.
    """

    def __init__(self, clock=None, max_spans=50000):
        self.clock = clock or time.time
        self.enabled = False
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans = []
        self._seq = itertools.count(1)
        self._trace_seq = itertools.count(1)
        self._pid = os.getpid()
        self.stats = {"spans": 0, "dropped": 0, "traces_started": 0}

    # -- lifecycle ------------------------------------------------------
    def enable(self):
        self.enabled = True
        return self

    def disable(self):
        self.enabled = False
        return self

    def reset(self):
        """Drop collected spans and counters (tests, long processes)."""
        with self._lock:
            self._spans = []
            self.stats = {"spans": 0, "dropped": 0, "traces_started": 0}

    # -- span creation --------------------------------------------------
    def _new_id(self):
        return f"{self._pid:x}-{next(self._seq):x}"

    def span(self, name, site=None, tags=None, parent=None,
             remote_parent=None):
        """Open a span (use as a context manager).

        Parent resolution: an explicit *parent*
        (:class:`TraceContext`, active span, or :class:`Span`) wins;
        otherwise the ambient current span; otherwise *remote_parent*
        (the context carried by an incoming wire message); otherwise
        the span starts a fresh trace.  Returns the shared no-op span
        when tracing is disabled.
        """
        if not self.enabled:
            return _NULL_SPAN
        parent_ctx = None
        for candidate in (parent, _CURRENT_SPAN.get(), remote_parent):
            if candidate is None:
                continue
            ctx = getattr(candidate, "context", candidate)
            if isinstance(ctx, TraceContext):
                parent_ctx = ctx
                break
        if parent_ctx is None:
            trace_id = f"{self._pid:x}-t{next(self._trace_seq):x}"
            parent_id = None
            with self._lock:
                self.stats["traces_started"] += 1
        else:
            trace_id = parent_ctx.trace_id
            parent_id = parent_ctx.span_id
        span = Span(trace_id, self._new_id(), parent_id, site, name,
                    started=self.clock(), tags=tags)
        return _ActiveSpan(self, span)

    def _record(self, span):
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.stats["dropped"] += 1
                return
            self._spans.append(span)
            self.stats["spans"] += 1

    # -- ambient accessors ----------------------------------------------
    def current_context(self):
        """The ambient span's :class:`TraceContext`, or ``None``."""
        span = _CURRENT_SPAN.get()
        return span.context if span is not None else None

    def current_trace_id(self):
        span = _CURRENT_SPAN.get()
        return span.trace_id if span is not None else None

    # -- collection -----------------------------------------------------
    def spans(self, trace_id=None):
        """Finished spans (optionally one trace's), in finish order."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def trace_ids(self):
        seen = []
        for span in self.spans():
            if span.trace_id not in seen:
                seen.append(span.trace_id)
        return seen

    def export(self, trace_id=None):
        """Spans as JSON-able dicts (one site's contribution)."""
        return [span.to_dict() for span in self.spans(trace_id)]

    def trace_tree(self, trace_id):
        """Assemble this tracer's spans for *trace_id* into a tree."""
        return assemble_trace(self.spans(trace_id))


#: The process-wide tracer every in-process deployment shares.
TRACER = Tracer()


def enable_tracing():
    """Turn the shared tracer on; returns it for chaining."""
    return TRACER.enable()


def disable_tracing():
    return TRACER.disable()


def propagate(fn):
    """Wrap *fn* to run in the caller's ambient context.

    Executor worker threads do not inherit :mod:`contextvars`, so the
    fan-out paths wrap their per-subquery callables with this to keep
    span parentage intact.  Returns *fn* unchanged while tracing is
    off -- zero overhead on the hot path.
    """
    if not TRACER.enabled:
        return fn
    captured = contextvars.copy_context()

    def run(*args, **kwargs):
        return captured.copy().run(fn, *args, **kwargs)

    return run


def attach_context(message, span):
    """Stamp *span*'s context onto a wire message (no-op for null spans)."""
    context = getattr(span, "context", span)
    if context is not None:
        message.trace_ctx = context
    return message


class TraceTreeNode:
    """One span plus its children, assembled from collected spans."""

    __slots__ = ("span", "children")

    def __init__(self, span):
        self.span = span
        self.children = []

    def sites_touched(self):
        out = {self.span.site}
        for child in self.children:
            out |= child.sites_touched()
        return out - {None}

    def total_spans(self):
        return 1 + sum(child.total_spans() for child in self.children)

    def depth(self):
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def find_all(self, name):
        """Every node in the tree whose span has *name*, preorder."""
        out = []
        if self.span.name == name:
            out.append(self)
        for child in self.children:
            out.extend(child.find_all(name))
        return out

    def to_dict(self):
        return {
            "span": self.span.to_dict(),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent=0):
        """A human-readable indented tree."""
        pad = "  " * indent
        ms = self.span.duration * 1000
        line = (f"{pad}{self.span.name} @{self.span.site} "
                f"[{ms:.2f}ms]")
        if self.span.tags:
            tags = ", ".join(f"{k}={v}" for k, v in
                             sorted(self.span.tags.items()))
            line += f" ({tags})"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self):
        return (f"TraceTreeNode({self.span.name!r}@{self.span.site!r}, "
                f"children={len(self.children)})")


def assemble_trace(spans):
    """Build one tree from spans (objects or exported dicts).

    Accepts contributions from several sites/processes: spans link by
    ``parent_id``, children are ordered by start time, and orphans
    (parent not in the set) become additional roots.  Returns the root
    :class:`TraceTreeNode` -- or a synthetic ``trace`` root when the
    set has several roots.
    """
    materialized = [
        span if isinstance(span, Span) else Span.from_dict(span)
        for span in spans
    ]
    if not materialized:
        return None
    nodes = {span.span_id: TraceTreeNode(span) for span in materialized}
    roots = []
    for span in sorted(materialized, key=lambda s: (s.started, s.span_id)):
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    if len(roots) == 1:
        return roots[0]
    synthetic = Span(materialized[0].trace_id, "root", None, None, "trace",
                     started=min(s.started for s in materialized),
                     ended=max(s.ended or s.started for s in materialized))
    root = TraceTreeNode(synthetic)
    root.children = roots
    return root


def to_trace_node(tree):
    """Convert a :class:`TraceTreeNode` tree into the simulator's
    :class:`~repro.sim.trace.TraceNode` shape, so live traces replay
    through the same cost-model accounting as captured ones."""
    from repro.sim.trace import TraceNode

    node = TraceNode(tree.span.site, tree.span.name)
    node.request_size = int(tree.span.tags.get("request_size", 0) or 0)
    node.reply_size = int(tree.span.tags.get("reply_size", 0) or 0)
    for child in tree.children:
        node.children.append(to_trace_node(child))
    return node
