"""Live observability: distributed tracing, unified metrics, EXPLAIN.

The three pillars, each usable on its own:

* :mod:`repro.obs.tracing` -- spans with a wire-portable
  ``trace_id``/``span_id`` context, assembled into per-query trees
  that span sites (and convert into the simulator's
  :class:`~repro.sim.trace.TraceNode` shape);
* :mod:`repro.obs.registry` -- counter/gauge/histogram primitives and
  a registry that absorbs the pre-existing ad-hoc stats dicts behind
  one ``snapshot()``;
* :mod:`repro.obs.explain` -- ``EXPLAIN``/``EXPLAIN ANALYZE`` for
  distributed queries: routing, per-node QEG decisions, and the
  subquery plan.

:mod:`repro.obs.explain` imports query-engine modules, so it is
re-exported lazily to keep :mod:`repro.net.messages` (which imports
the tracing context) cycle-free.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    build_cluster_registry,
    build_site_registry,
    cluster_metrics,
    durability_counters,
    engine_counters,
    fault_counters,
    site_metrics,
)
from repro.obs.tracing import (
    TRACER,
    Span,
    TraceContext,
    Tracer,
    TraceTreeNode,
    assemble_trace,
    attach_context,
    disable_tracing,
    enable_tracing,
    propagate,
    to_trace_node,
)

__all__ = [
    "TRACER",
    "Tracer",
    "Span",
    "TraceContext",
    "TraceTreeNode",
    "assemble_trace",
    "attach_context",
    "enable_tracing",
    "disable_tracing",
    "propagate",
    "to_trace_node",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "build_site_registry",
    "build_cluster_registry",
    "site_metrics",
    "cluster_metrics",
    "durability_counters",
    "engine_counters",
    "fault_counters",
    "ExplainReport",
    "ExplainObserver",
    "build_explain",
]


def __getattr__(name):
    if name in ("ExplainReport", "ExplainObserver", "build_explain"):
        from repro.obs import explain

        return getattr(explain, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
