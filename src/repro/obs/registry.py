"""Unified metrics: counter/gauge/histogram primitives + collectors.

The repo grew three ad-hoc metric surfaces -- the per-database
``stats`` dicts, the simulator's ``collect_engine_counters`` /
``collect_fault_counters`` aggregations, and the DNS/connection-pool
stats dicts.  This module puts one registry in front of all of them:

* **Primitives** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) for new instrumentation, thread-safe and
  snapshot-able;
* **Collectors**: zero-argument callables returning plain dicts, which
  is exactly what every existing ``stats`` surface already is -- so the
  legacy dicts keep working untouched and the registry absorbs them at
  snapshot time;
* **Aggregation helpers** (:func:`engine_counters`,
  :func:`fault_counters`, :func:`site_metrics`,
  :func:`cluster_metrics`): the canonical implementations behind the
  back-compat aliases in :mod:`repro.sim.metrics` and the new
  ``OrganizingAgent.metrics()`` / ``Cluster.metrics()`` surfaces.
"""

import threading


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def snapshot(self):
        return self._value

    def __repr__(self):
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A value that goes up and down (pool sizes, open circuits, ...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        return self._value

    def snapshot(self):
        return self._value

    def __repr__(self):
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """Summary statistics over observed values (latencies, sizes).

    Keeps count/sum/min/max exactly plus a bounded reservoir of the
    most recent observations for approximate percentiles -- enough for
    the paper-style latency reporting without unbounded memory.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "_recent", "_limit", "_lock")

    def __init__(self, name, keep_recent=1024):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        self._recent = []
        self._limit = keep_recent
        self._lock = threading.Lock()

    def observe(self, value):
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
            self._recent.append(value)
            if len(self._recent) > self._limit:
                del self._recent[: len(self._recent) - self._limit]

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction):
        """Approximate percentile over the recent reservoir."""
        with self._lock:
            sample = sorted(self._recent)
        if not sample:
            return 0.0
        index = min(len(sample) - 1, int(fraction * len(sample)))
        return sample[index]

    def snapshot(self):
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.minimum,
                "max": self.maximum,
                "mean": self.total / self.count if self.count else 0.0,
                "p95": self._percentile_locked(0.95),
            }

    def _percentile_locked(self, fraction):
        sample = sorted(self._recent)
        if not sample:
            return 0.0
        index = min(len(sample) - 1, int(fraction * len(sample)))
        return sample[index]

    def __repr__(self):
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Named primitives plus pluggable collectors, one snapshot call.

    ``snapshot()`` returns a plain nested dict: every registered
    primitive under its name, and every collector's dict under the
    collector's name.  Collector failures are reported in-band (an
    ``{"error": ...}`` entry) instead of breaking the whole snapshot.
    """

    def __init__(self, name=""):
        self.name = name
        self._lock = threading.Lock()
        self._metrics = {}
        self._collectors = {}

    # -- primitives -----------------------------------------------------
    def _get_or_make(self, name, factory, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory(name)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}")
            return metric

    def counter(self, name):
        return self._get_or_make(name, Counter, Counter)

    def gauge(self, name):
        return self._get_or_make(name, Gauge, Gauge)

    def histogram(self, name):
        return self._get_or_make(name, Histogram, Histogram)

    # -- collectors -----------------------------------------------------
    def register_collector(self, name, collect):
        """Absorb an existing stats surface: *collect()* -> dict."""
        with self._lock:
            self._collectors[name] = collect

    def snapshot(self):
        with self._lock:
            metrics = dict(self._metrics)
            collectors = dict(self._collectors)
        out = {}
        for name, metric in sorted(metrics.items()):
            out[name] = metric.snapshot()
        for name, collect in sorted(collectors.items()):
            try:
                out[name] = collect()
            except Exception as exc:  # pragma: no cover - defensive
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out

    def __repr__(self):
        return (f"MetricsRegistry({self.name!r}, "
                f"metrics={len(self._metrics)}, "
                f"collectors={len(self._collectors)})")


# ----------------------------------------------------------------------
# Canonical aggregations (the back-compat aliases in repro.sim.metrics
# delegate here).
# ----------------------------------------------------------------------
def engine_counters(databases):
    """Aggregate hot-path engine counters across site databases.

    Sums the id-path index hit/miss/rebuild counters of every
    :class:`~repro.core.database.SensorDatabase` in *databases* (a
    mapping of site -> database or an iterable of databases) and
    snapshots the process-wide serialization reuse counters.
    """
    from repro.xmlkit.serializer import serialization_stats

    if hasattr(databases, "values"):
        databases = databases.values()
    totals = {"index_hits": 0, "index_misses": 0, "index_rebuilds": 0}
    for database in databases:
        for key in totals:
            totals[key] += database.stats.get(key, 0)
    serialization = serialization_stats()
    reused = serialization["cache_hits"]
    rebuilt = serialization["cache_misses"]
    totals["serialization_reused"] = reused
    totals["serialization_rebuilt"] = rebuilt
    total_lookups = totals["index_hits"] + totals["index_misses"]
    totals["index_hit_ratio"] = (
        round(totals["index_hits"] / total_lookups, 3)
        if total_lookups else 0.0
    )
    totals["serialization_reuse_ratio"] = (
        round(reused / (reused + rebuilt), 3) if reused + rebuilt else 0.0
    )
    return totals


def fault_counters(agents):
    """Aggregate the fault-handling counters across organizing agents.

    Sums each OA's retry/failure/breaker/DNS-refresh stats and its
    gather driver's degradation counters, and merges every per-peer
    circuit-breaker snapshot into ``breakers`` (keyed
    ``observing_site -> peer``).
    """
    if hasattr(agents, "values"):
        agents = agents.values()
    totals = {
        "retries": 0,
        "subquery_failures": 0,
        "circuit_fast_fails": 0,
        "dns_refreshes": 0,
        "failed_subqueries": 0,
        "partial_gathers": 0,
        "stale_served": 0,
    }
    breakers = {}
    for agent in agents:
        for key in ("retries", "subquery_failures",
                    "circuit_fast_fails", "dns_refreshes"):
            totals[key] += agent.stats.get(key, 0)
        driver_stats = getattr(agent.driver, "stats", {})
        for key in ("failed_subqueries", "partial_gathers", "stale_served"):
            totals[key] += driver_stats.get(key, 0)
        snapshot = agent.health_snapshot()
        if snapshot:
            breakers[agent.site_id] = snapshot
    totals["breakers"] = breakers
    return totals


def durability_counters(agents):
    """Aggregate WAL/checkpoint/recovery counters across agents.

    Sums every durable OA's :meth:`DurabilityManager.counters` and
    keeps the per-site snapshots under ``sites``.  Agents without
    durability contribute nothing; with none at all the totals are
    zero and ``sites`` is empty (the subsystem is off).
    """
    if hasattr(agents, "values"):
        agents = dict(agents)
    else:
        agents = {getattr(a, "site_id", i): a
                  for i, a in enumerate(agents)}
    totals = {
        "records_appended": 0,
        "checkpoints_written": 0,
        "recoveries": 0,
        "records_replayed": 0,
        "replay_skipped": 0,
        "cache_entries_expired": 0,
        "torn_bytes_dropped": 0,
        "wal_bytes": 0,
        "wal_fsyncs": 0,
    }
    sites = {}
    for site, agent in sorted(agents.items()):
        manager = getattr(agent, "durability", None)
        if manager is None:
            continue
        snapshot = manager.counters()
        sites[site] = snapshot
        for key in totals:
            totals[key] += snapshot.get(key, 0)
    totals["sites"] = sites
    return totals


def replication_counters(agents):
    """Aggregate read-replication counters across organizing agents.

    Sums every replicating OA's :meth:`ReplicationManager.counters`
    numeric figures (batches/bytes shipped, failovers, lag) and keeps
    the per-site snapshots under ``sites``.  Agents without replication
    contribute nothing; with none at all the totals are zero and
    ``sites`` is empty (the subsystem is off).
    """
    if hasattr(agents, "values"):
        agents = dict(agents)
    else:
        agents = {getattr(a, "site_id", i): a
                  for i, a in enumerate(agents)}
    totals = {
        "replicated_batches": 0,
        "replicated_entries": 0,
        "replicated_bytes": 0,
        "replica_batches_accepted": 0,
        "replica_batches_stale_dropped": 0,
        "failover_attempts": 0,
        "failover_served": 0,
        "replica_too_stale": 0,
        "failover_no_replica": 0,
        "rehydrations_served": 0,
    }
    sites = {}
    lag_total = 0.0
    lag_count = 0
    lag_max = 0.0
    for site, agent in sorted(agents.items()):
        manager = getattr(agent, "replication", None)
        if manager is None:
            continue
        snapshot = manager.counters()
        sites[site] = snapshot
        for key in totals:
            totals[key] += snapshot.get(key, 0)
        lag_total += snapshot.get("lag_total", 0.0)
        lag_count += snapshot.get("lag_count", 0)
        lag_max = max(lag_max, snapshot.get("lag_max", 0.0))
    totals["replication_lag_mean"] = (
        round(lag_total / lag_count, 6) if lag_count else 0.0
    )
    totals["replication_lag_max"] = lag_max
    totals["sites"] = sites
    return totals


def aggregation_counters(agents):
    """Aggregate hierarchical-aggregation counters across agents.

    Sums every aggregating OA's
    :meth:`AggregationManager.counters` numeric figures (answers,
    rollups, partial fetches, derived refreshes) plus the summary-cache
    hit/miss counters, recomputes the cluster-wide
    ``summary_hit_ratio``, and keeps the per-site snapshots under
    ``sites``.  Agents without aggregation contribute nothing; with
    none at all the totals are zero (the subsystem is off).
    """
    if hasattr(agents, "values"):
        agents = dict(agents)
    else:
        agents = {getattr(a, "site_id", i): a
                  for i, a in enumerate(agents)}
    totals = {
        "answers": 0,
        "rollups": 0,
        "rollup_matches": 0,
        "partials_fetched": 0,
        "partials_served": 0,
        "partial_failures": 0,
        "fallbacks": 0,
        "unsupported_queries": 0,
        "derived_refreshes": 0,
        "derived_refresh_errors": 0,
    }
    summary_totals = {}
    sites = {}
    for site, agent in sorted(agents.items()):
        manager = getattr(agent, "aggregation", None)
        if manager is None:
            continue
        snapshot = manager.counters()
        sites[site] = snapshot
        for key in totals:
            totals[key] += snapshot.get(key, 0)
        for key, value in snapshot.get("summary", {}).items():
            if isinstance(value, (int, float)):
                summary_totals[key] = summary_totals.get(key, 0) + value
    totals["summary"] = summary_totals
    asked = summary_totals.get("hits", 0) + summary_totals.get("misses", 0)
    totals["summary_hit_ratio"] = (
        round(summary_totals.get("hits", 0) / asked, 6) if asked else 0.0
    )
    totals["sites"] = sites
    return totals


def rebalance_counters(agents, balancer=None):
    """Aggregate adaptive-rebalancing counters across agents.

    Sums every OA's migration-safety stats (migrations in/out/aborted,
    held updates forwarded/lost, migration-driven cache evictions) and
    its :class:`~repro.rebalance.tracker.PathLoadTracker` figures, and
    -- when a cluster :class:`~repro.rebalance.balancer.LoadBalancer`
    is passed -- merges its control-loop counters under ``balancer``.
    The per-site tracker snapshots live under ``sites``.
    """
    if hasattr(agents, "values"):
        agents = dict(agents)
    else:
        agents = {getattr(a, "site_id", i): a
                  for i, a in enumerate(agents)}
    totals = {
        "migrations_in": 0,
        "migrations_out": 0,
        "migrations_aborted": 0,
        "migrations_released": 0,
        "held_updates_forwarded": 0,
        "held_updates_lost": 0,
        "migration_cache_evictions": 0,
        "migration_summary_evictions": 0,
        "tracked_queries": 0,
        "tracked_anchors": 0,
    }
    sites = {}
    for site, agent in sorted(agents.items()):
        for key in ("migrations_in", "migrations_out",
                    "migrations_aborted", "migrations_released",
                    "held_updates_forwarded", "held_updates_lost",
                    "migration_cache_evictions",
                    "migration_summary_evictions"):
            totals[key] += agent.stats.get(key, 0)
        tracker = getattr(agent, "load", None)
        if tracker is None:
            continue
        snapshot = tracker.counters()
        sites[site] = snapshot
        totals["tracked_queries"] += snapshot.get("queries", 0)
        totals["tracked_anchors"] += snapshot.get("anchors", 0)
    totals["sites"] = sites
    if balancer is not None:
        totals["balancer"] = balancer.counters()
    return totals


def health_snapshots(agents):
    """Per-site circuit-breaker health, keyed ``site -> peer``.

    The direct :meth:`SiteHealthTracker.health_snapshot` surface for
    ``cluster.metrics()`` -- unlike the ``faults`` aggregation this is
    always present (empty dicts for sites that tracked no peer yet),
    so dashboards can rely on the key existing.
    """
    if hasattr(agents, "values"):
        agents = dict(agents)
    else:
        agents = {getattr(a, "site_id", i): a
                  for i, a in enumerate(agents)}
    return {site: agent.health_snapshot()
            for site, agent in sorted(agents.items())}


def semcache_counters(agents):
    """Aggregate semantic-cache counters across organizing agents.

    Sums every driver's aggregate-cache hit/miss/coalesce/byte figures
    and its bucket/prewarm counters, computes the overall hit ratio,
    and snapshots the process-wide canonicalizer memo and compile-key
    stats once (tagged ``scope: process`` -- never summed per site).
    """
    from repro.core.qeg import pattern_key_stats
    from repro.core.semcache import canonicalization_stats

    if hasattr(agents, "values"):
        agents = agents.values()
    totals = {
        "hits": 0,
        "misses": 0,
        "stores": 0,
        "stale_rejects": 0,
        "bucket_coalesced_hits": 0,
        "admission_rejects": 0,
        "evictions": 0,
        "entries": 0,
        "bytes": 0,
        "bucket_generalized": 0,
        "bucket_rechecks": 0,
        "prewarm_queries": 0,
    }
    for agent in agents:
        driver = agent.driver
        aggregate = driver.aggregates.metrics()
        for key in ("hits", "misses", "stores", "stale_rejects",
                    "bucket_coalesced_hits", "admission_rejects",
                    "evictions", "entries", "bytes"):
            totals[key] += aggregate.get(key, 0)
        for key in ("bucket_generalized", "bucket_rechecks",
                    "prewarm_queries"):
            totals[key] += driver.stats.get(key, 0)
    lookups = totals["hits"] + totals["misses"]
    totals["hit_ratio"] = (
        round(totals["hits"] / lookups, 3) if lookups else 0.0
    )
    totals["canonicalizer"] = dict(canonicalization_stats(),
                                   scope="process")
    totals["compile_keys"] = dict(pattern_key_stats(), scope="process")
    return totals


def build_site_registry(agent):
    """A registry absorbing one organizing agent's metric surfaces.

    Everything the OA already counts keeps its dict shape (the
    collectors snapshot the live dicts), so legacy readers and the
    unified snapshot always agree.
    """
    registry = MetricsRegistry(name=f"site:{agent.site_id}")
    registry.register_collector("oa", lambda: dict(agent.stats))
    registry.register_collector("gather",
                                lambda: dict(agent.driver.stats))
    registry.register_collector("database",
                                lambda: dict(agent.database.stats))
    registry.register_collector("dns_cache",
                                lambda: dict(agent.resolver.stats))
    registry.register_collector("continuous",
                                lambda: dict(agent.continuous.stats))
    registry.register_collector("engine", agent.engine_counters)
    registry.register_collector("semcache", agent.driver.semcache_counters)
    registry.register_collector("breakers", agent.health_snapshot)
    if getattr(agent, "durability", None) is not None:
        registry.register_collector("durability", agent.durability.counters)
    if getattr(agent, "replication", None) is not None:
        registry.register_collector("replication",
                                    agent.replication.counters)
    if getattr(agent, "aggregation", None) is not None:
        registry.register_collector("aggregation",
                                    agent.aggregation.counters)
    if getattr(agent, "load", None) is not None:
        # The migration-safety stats (migrations_in/out/aborted, held
        # updates, eviction counts) already flow through the "oa"
        # collector; this adds the per-path load attribution figures.
        registry.register_collector("load", agent.load.counters)
    return registry


def build_cluster_registry(cluster):
    """A registry absorbing a whole cluster's metric surfaces."""
    registry = MetricsRegistry(name="cluster")
    registry.register_collector("cluster", lambda: dict(cluster.stats))
    registry.register_collector("dns_server",
                                lambda: dict(cluster.dns.stats))
    # The network may be wrapped (e.g. a FaultyNetwork around the
    # loopback): only absorb the surfaces the wrapper exposes.
    traffic = getattr(cluster.network, "traffic", None)
    if traffic is not None:
        registry.register_collector("traffic", traffic.summary)
    pool_stats = getattr(cluster.network, "pool_stats", None)
    if pool_stats is not None:
        registry.register_collector("pool", lambda: dict(pool_stats))
    registry.register_collector(
        "engine",
        lambda: engine_counters(
            {site: a.database for site, a in cluster.agents.items()}),
    )
    registry.register_collector(
        "faults", lambda: fault_counters(cluster.agents))
    registry.register_collector(
        "semcache", lambda: semcache_counters(cluster.agents))
    if getattr(cluster, "durability_config", None) is not None:
        registry.register_collector(
            "durability", lambda: durability_counters(cluster.agents))
    if getattr(cluster, "replication_config", None) is not None:
        registry.register_collector(
            "replication", lambda: replication_counters(cluster.agents))
    if getattr(cluster, "aggregation_config", None) is not None:
        registry.register_collector(
            "aggregation", lambda: aggregation_counters(cluster.agents))
    if getattr(cluster, "balancer", None) is not None:
        registry.register_collector(
            "rebalance",
            lambda: rebalance_counters(cluster.agents,
                                       balancer=cluster.balancer))
    registry.register_collector(
        "health", lambda: health_snapshots(cluster.agents))

    def per_site():
        return {site: site_metrics(agent)
                for site, agent in sorted(cluster.agents.items())}

    registry.register_collector("sites", per_site)
    return registry


def site_metrics(agent):
    """One OA's unified snapshot (used by ``OrganizingAgent.metrics``)."""
    return build_site_registry(agent).snapshot()


def cluster_metrics(cluster):
    """Cluster-wide unified snapshot (used by ``Cluster.metrics``)."""
    return build_cluster_registry(cluster).snapshot()
