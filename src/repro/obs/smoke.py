"""Observability smoke check: a traced 3-site TCP query, end to end.

``python -m repro.obs.smoke`` builds a three-level ownership chain
(``top`` owns the region, ``mid`` the group, ``leaf`` the sensor),
serves it over real TCP sockets, runs one user query at the top with
tracing enabled, and asserts the assembled trace is a single tree that

* touches all three sites,
* parent-links every span into one root (no orphans), and
* contains the expected ``gather``/``send-subquery``/``tcp-serve``
  chain across the two hops.

The trace tree is written to ``TRACE_smoke.json`` (override with
``--output``) so CI can archive it as an artifact.

``--validate 'BENCH_*.json'`` additionally (or instead, with
``--no-trace``) validates benchmark result files against the shared
envelope schema in :mod:`benchmarks.reporting`.
"""

import argparse
import glob
import json
import sys


def _chain_document():
    from repro.xmlkit import Element

    root = Element("region", attrib={"id": "R"})
    group = Element("group", attrib={"id": "G"})
    sensor = Element("sensor", attrib={"id": "S"})
    sensor.append(Element("value", text="42"))
    group.append(sensor)
    root.append(group)
    return root


def _chain_plan():
    from repro.core import PartitionPlan

    return PartitionPlan({
        "top": [(("region", "R"),)],
        "mid": [(("region", "R"), ("group", "G"))],
        "leaf": [(("region", "R"), ("group", "G"), ("sensor", "S"))],
    })


QUERY = "/region[@id='R']/group[@id='G']/sensor[@id='S']/value"


def run_smoke(output="TRACE_smoke.json"):
    """Run the traced 3-site query; returns a list of problems."""
    from repro.net.tcpruntime import TcpCluster
    from repro.obs.tracing import (
        TRACER,
        assemble_trace,
        disable_tracing,
        enable_tracing,
    )

    TRACER.reset()
    enable_tracing()
    try:
        with TcpCluster(_chain_document(), _chain_plan(),
                        service="smoke") as tcp:
            top = tcp.cluster.agents["top"]
            results, outcome = top.answer_user_query(QUERY)
    finally:
        disable_tracing()

    problems = []
    if len(results) != 1:
        problems.append(f"expected 1 result, got {len(results)}")
    if not outcome.complete:
        problems.append("gather outcome is not complete")

    trace_ids = TRACER.trace_ids()
    if len(trace_ids) != 1:
        problems.append(f"expected 1 trace, got {len(trace_ids)}")
    spans = TRACER.export(trace_ids[0]) if trace_ids else []
    tree = assemble_trace(spans)
    if tree is None:
        problems.append("no spans collected")
        sites = set()
    else:
        sites = tree.sites_touched()
        if len(sites) < 3:
            problems.append(
                f"trace touched {sorted(sites)}, expected >= 3 sites")
        # Every span must parent-link into one root: a synthetic
        # "trace" root means assemble_trace found orphans.
        if tree.span.name == "trace":
            problems.append("trace has orphan spans (multiple roots)")
        span_ids = {span["span_id"] for span in spans}
        for span in spans:
            parent = span["parent_id"]
            if parent is not None and parent not in span_ids:
                problems.append(
                    f"span {span['span_id']} ({span['name']}) has "
                    f"unknown parent {parent}")
        for name in ("user-query", "gather", "send-subquery",
                     "tcp-serve"):
            if not tree.find_all(name):
                problems.append(f"no {name!r} span in the trace")

    report = {
        "query": QUERY,
        "sites_touched": sorted(sites),
        "span_count": len(spans),
        "problems": problems,
        "spans": spans,
        "tree": tree.to_dict() if tree is not None else None,
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if tree is not None:
        print(tree.render())
    print(f"trace: {len(spans)} spans across {sorted(sites)} "
          f"-> {output}")
    return problems


def validate_reports(patterns):
    """Validate ``BENCH_*.json`` files; returns a list of problems."""
    try:
        from benchmarks.reporting import validate_file
    except ImportError:
        # Running from an installed tree without the benchmarks
        # package: fall back to the envelope's required keys.
        def validate_file(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, ValueError) as exc:
                return [f"{path}: unreadable: {exc}"]
            missing = [key for key in ("schema_version", "name",
                                       "timestamp", "params", "metrics")
                       if key not in data]
            return [f"{path}: missing {key!r}" for key in missing]

    problems = []
    seen = 0
    for pattern in patterns:
        for path in sorted(glob.glob(pattern)):
            seen += 1
            issues = validate_file(path)
            problems.extend(issues)
            print(f"{path}: {'INVALID' if issues else 'ok'}")
    if seen == 0:
        problems.append(f"no files matched {patterns}")
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--output", default="TRACE_smoke.json",
                        help="where to write the trace JSON artifact")
    parser.add_argument("--validate", action="append", default=[],
                        metavar="GLOB",
                        help="validate matching BENCH_*.json files")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip the traced query (validate only)")
    args = parser.parse_args(argv)

    problems = []
    if not args.no_trace:
        problems.extend(run_smoke(output=args.output))
    if args.validate:
        problems.extend(validate_reports(args.validate))
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
