"""Setup shim for environments whose pip cannot build PEP 517 wheels."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Cache-and-Query for Wide Area Sensor Databases (IrisNet, "
        "SIGMOD 2003) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
