"""Parking Space Finder: the paper's motivating service at full scale.

Deploys the 2400-space database of Section 5.1 on the hierarchical
9-site architecture (Figure 6(iv)), streams webcam-style availability
updates through sensing agents, and serves the kinds of queries a
driver's navigation system would pose -- including the query-based
consistency story: coarse freshness far from the destination, strict
freshness when close.

Run:  python examples/parking_space_finder.py
"""

import random

from repro.arch import hierarchical
from repro.net import Cluster
from repro.service import (
    ParkingConfig,
    all_space_paths,
    build_parking_document,
    type1_query,
    type3_query,
)
from repro.xmlkit import serialize


class DrivingClock:
    """A controllable wall clock shared by every site."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def main():
    config = ParkingConfig.paper_small()
    document = build_parking_document(config)
    clock = DrivingClock()
    cluster = Cluster(document, hierarchical(config).plan, clock=clock)
    print(f"deployed {config.total_spaces} parking spaces over "
          f"{len(cluster.sites)} sites")

    # Sensor proxies: one SA per neighborhood's worth of webcams.
    spaces = all_space_paths(config)
    agents = []
    for index in range(0, len(spaces), 400):
        agents.append(cluster.add_sensing_agent(
            f"sa-{index // 400}", spaces[index:index + 400]))
    rng = random.Random(4)
    for _ in range(300):  # a burst of sensor readings
        agent = rng.choice(agents)
        path = rng.choice(agent.space_paths)
        agent.send_update(path, values={
            "available": "yes" if rng.random() < 0.5 else "no"})
    print("streamed 300 sensor updates through "
          f"{len(agents)} sensing agents\n")

    # --- The driver is 10 minutes out: minutes-old data is fine. -----
    clock.now = 600.0
    destination = ("Pittsburgh", "Oakland", "Shadyside")
    coarse = (
        type3_query(config, destination[0], destination[1], destination[2],
                    block="7")
        + "/parkingSpace[available='yes'][timestamp() > current-time() - 600]"
    )
    results, site, outcome = cluster.query(coarse)
    print(f"[far away] {len(results)} candidate spaces near the "
          f"Oakland/Shadyside boundary "
          f"(answered at {site}, {len(outcome.subqueries_sent)} subqueries)")

    # --- Approaching: insist on fresh data; stale caches are bypassed.
    clock.now = 900.0
    strict = (
        type3_query(config, destination[0], destination[1], destination[2],
                    block="7")
        + "/parkingSpace[available='yes'][timestamp() > current-time() - 30]"
    )
    results, site, outcome = cluster.query(strict)
    print(f"[arriving]  {len(results)} spaces confirmed fresh "
          f"({len(outcome.subqueries_sent)} owner subqueries)")

    # --- Pick the cheapest available space in the target block. ------
    cheapest = (
        type1_query(config, "Pittsburgh", "Oakland", "7")
        + "/parkingSpace[available='yes']"
          "[not(price > ../parkingSpace[available='yes']/price)]"
    )
    results, _, _ = cluster.query(cheapest)
    if results:
        print("\ncheapest available space in Oakland block 7:")
        print("  ", serialize(results[0], pretty=True).strip())

    # --- The space is taken before arrival; directions auto-update. --
    taken = results[0].id if results else "1"
    victim = next(
        p for p in spaces
        if p[4][1] == "Oakland" and p[5][1] == "7" and p[6][1] == taken)
    agents[0].send_update(victim, values={"available": "no"})
    results, _, _ = cluster.query(cheapest)
    replacement = results[0].id if results else None
    print(f"\nspace {taken} was taken; rerouting to space {replacement}")

    print("\ninvariant violations:",
          cluster.validate(structural_only=True) or "none")


if __name__ == "__main__":
    main()
