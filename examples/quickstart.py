"""Quickstart: a wide area sensor database in ~60 lines.

Builds the paper's running example -- parking spaces in Pittsburgh --
partitions the single XML document across three sites, and runs the
Figure 2 query ("all available parking spaces in Oakland block 1 or
Shadyside block 1") with self-starting DNS routing, query-evaluate-
gather and caching, all in-process.

Run:  python examples/quickstart.py
"""

from repro.net import Cluster
from repro.xmlkit import parse_fragment, serialize

DOCUMENT = """
<usRegion id='NE'>
  <state id='PA'><county id='Allegheny'><city id='Pittsburgh'>
    <neighborhood id='Oakland' zipcode='15213'>
      <block id='1'>
        <parkingSpace id='1'><available>yes</available><price>25</price></parkingSpace>
        <parkingSpace id='2'><available>no</available><price>0</price></parkingSpace>
      </block>
    </neighborhood>
    <neighborhood id='Shadyside' zipcode='15232'>
      <block id='1'>
        <parkingSpace id='1'><available>yes</available><price>50</price></parkingSpace>
      </block>
    </neighborhood>
  </city></county></state>
</usRegion>
"""

FIGURE2_QUERY = (
    "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
    "/city[@id='Pittsburgh']"
    "/neighborhood[@id='Oakland' or @id='Shadyside']"
    "/block[@id='1']/parkingSpace[available='yes']"
)


def main():
    document = parse_fragment(DOCUMENT)

    # Partition: one site owns the upper hierarchy, one site per
    # neighborhood (ownership is per IDable node; everything below an
    # assignment follows it).
    city = [("usRegion", "NE"), ("state", "PA"),
            ("county", "Allegheny"), ("city", "Pittsburgh")]
    cluster = Cluster(document, {
        "top-site": [[("usRegion", "NE")]],
        "oakland-site": [city + [("neighborhood", "Oakland")]],
        "shadyside-site": [city + [("neighborhood", "Shadyside")]],
    })

    # 1. Self-starting routing: the LCA's DNS name comes straight from
    #    the query string -- no global state, no schema.
    site, lca = cluster.route_query(FIGURE2_QUERY)
    print("query routes to:", site,
          "(LCA:", "/".join(f"{t}={i}" for t, i in lca) + ")")
    print("DNS name:", cluster.dns.name_for(lca))

    # 2. Query-evaluate-gather: the LCA site answers from its fragment
    #    and pulls the missing parts from the owners.
    results, site, outcome = cluster.query(FIGURE2_QUERY)
    print(f"\n{len(results)} available space(s) "
          f"(gathered with {len(outcome.subqueries_sent)} subqueries):")
    for result in results:
        print("  ", serialize(result))

    # 3. Aggressive caching: the same query again is a pure local hit.
    _results, _site, outcome = cluster.query(FIGURE2_QUERY)
    print(f"\nsecond run used {len(outcome.subqueries_sent)} subqueries "
          "(answered from cache)")

    # 4. Sensor updates flow to the owner and are instantly queryable.
    space = tuple(city) + (("neighborhood", "Oakland"), ("block", "1"),
                           ("parkingSpace", "2"))
    sensor = cluster.add_sensing_agent("webcam-1", [space])
    sensor.send_update(space, values={"available": "yes"})
    results, _, _ = cluster.query(FIGURE2_QUERY)
    print(f"\nafter space 2 frees up: {len(results)} available space(s)")

    # 5. Everything above preserved the storage invariants at every site.
    problems = cluster.validate(structural_only=True)
    print("\ninvariant violations:", problems or "none")


if __name__ == "__main__":
    main()
