"""Partial-match caching, subsumption and query-based consistency.

Walks through the caching behaviours of Section 3.3 and the
consistency mechanism of Section 4 on the paper's own examples:

* an Oakland query caches data at Pittsburgh's site;
* a later Oakland-or-Shadyside query *partially* matches that cache and
  only fetches the missing half;
* once every neighborhood is cached, a wildcard query over all of them
  is answered locally (subsumption);
* a freshness tolerance decides whether the cache or the owner answers.

Run:  python examples/caching_and_consistency.py
"""

from repro.net import Cluster
from repro.xmlkit import parse_fragment

DOCUMENT = """
<usRegion id='NE'><state id='PA'><county id='Allegheny'>
  <city id='Pittsburgh'>
    <neighborhood id='Oakland'>
      <block id='1'><parkingSpace id='1'><available>yes</available></parkingSpace></block>
    </neighborhood>
    <neighborhood id='Shadyside'>
      <block id='1'><parkingSpace id='1'><available>no</available></parkingSpace></block>
    </neighborhood>
    <neighborhood id='Downtown'>
      <block id='1'><parkingSpace id='1'><available>yes</available></parkingSpace></block>
    </neighborhood>
  </city>
</county></state></usRegion>
"""

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def main():
    document = parse_fragment(DOCUMENT)
    city = [("usRegion", "NE"), ("state", "PA"), ("county", "Allegheny"),
            ("city", "Pittsburgh")]
    clock = Clock()
    cluster = Cluster(document, {
        "pgh": [[("usRegion", "NE")]],
        "oak": [city + [("neighborhood", "Oakland")]],
        "shady": [city + [("neighborhood", "Shadyside")]],
        "down": [city + [("neighborhood", "Downtown")]],
    }, clock=clock)
    pittsburgh = cluster.agent("pgh")

    def sent():
        return pittsburgh.stats["subqueries_sent"]

    # -- partial-match caching ----------------------------------------
    before = sent()
    cluster.query(PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']",
                  at_site="pgh")
    print(f"Oakland query:            {sent() - before} subqueries "
          "(cold cache)")

    before = sent()
    cluster.query(
        PREFIX + "/neighborhood[@id='Oakland' or @id='Shadyside']"
                 "/block[@id='1']", at_site="pgh")
    print(f"Oakland-or-Shadyside:     {sent() - before} subquery "
          "(Oakland half came from cache -- partial match)")

    # -- subsumption ----------------------------------------------------
    before = sent()
    cluster.query(PREFIX + "/neighborhood[@id='Downtown']/block[@id='1']",
                  at_site="pgh")
    print(f"Downtown query:           {sent() - before} subquery")

    before = sent()
    results, _, _ = cluster.query(
        PREFIX + "/neighborhood/block/parkingSpace[available='yes']",
        at_site="pgh")
    print(f"ALL-neighborhood query:   {sent() - before} subqueries -- "
          f"subsumption: {len(results)} spaces entirely from cache")

    # -- query-based consistency ----------------------------------------
    clock.now = 300.0  # five minutes pass; caches are now 300s old
    tolerant = (PREFIX + "/neighborhood[@id='Oakland']"
                "/block[@id='1'][timestamp() > current-time() - 600]")
    before = sent()
    cluster.query(tolerant, at_site="pgh")
    print(f"\n10-min tolerance query:   {sent() - before} subqueries "
          "(300s-old cache is acceptable)")

    strict = (PREFIX + "/neighborhood[@id='Oakland']"
              "/block[@id='1'][timestamp() > current-time() - 60]")
    before = sent()
    cluster.query(strict, at_site="pgh")
    print(f"1-min tolerance query:    {sent() - before} subquery "
          "(stale cache bypassed, owner consulted)")

    # The owner itself ignores freshness bounds: users always get an
    # answer, even if the freshest copy is older than the tolerance.
    results, _, _ = cluster.query(strict, at_site="oak")
    print(f"same strict query at the owner: {len(results)} result "
          "(owner's copy is definitionally freshest)")


if __name__ == "__main__":
    main()
