"""Dynamic load balancing: Figure 9's scenario as a live demo.

A skewed workload hammers one neighborhood.  While queries keep
flowing, the hot neighborhood's blocks are delegated to other sites one
by one -- the paper's atomic ownership-migration protocol (Section 4) --
and the per-site load spreads out.  Answers stay correct throughout.

Run:  python examples/load_balancing_demo.py
"""

from repro.arch import hierarchical
from repro.net import Cluster
from repro.service import (
    ParkingConfig,
    QueryWorkload,
    build_parking_document,
)
from repro.service.parking import block_path


def owned_counts(cluster):
    return {site: len(cluster.database(site).owned_nodes())
            for site in cluster.sites}


def serve(cluster, workload, count):
    """Serve *count* queries; returns per-site query-handling counts."""
    handled = {site: 0 for site in cluster.sites}
    for _ in range(count):
        query, _qtype = workload.sample()
        _results, site, outcome = cluster.query(query)
        handled[site] += 1
        for subquery in outcome.subqueries_sent:
            # Attribute remote work to the owner that served it.
            name = cluster.dns.name_for(subquery.anchor_path)
            handled[cluster.dns.lookup(name).site] += 1
    return handled


def show(title, handled):
    total = sum(handled.values())
    print(f"\n{title} (total work units: {total})")
    for site in sorted(handled):
        bar = "#" * int(40 * handled[site] / max(total, 1))
        print(f"  {site:8s} {handled[site]:5d} {bar}")


def main():
    config = ParkingConfig.paper_small()
    document = build_parking_document(config)
    cluster = Cluster(document, hierarchical(config).plan)
    workload = QueryWorkload.qw(config, 1, skew=0.9,
                                hot_city="Pittsburgh",
                                hot_neighborhood="Oakland", seed=8)

    print("90% of the workload targets Pittsburgh/Oakland.")
    show("BEFORE balancing: work lands on Oakland's site",
         serve(cluster, workload, 300))

    print("\nmigrating Oakland's 20 blocks across all 9 sites, "
          "one delegation at a time...")
    moved = 0
    for index, block in enumerate(config.block_ids()):
        path = block_path(config, "Pittsburgh", "Oakland", block)
        target = f"site-{index % 9}"
        if cluster.owner_map[tuple(path)] != target:
            cluster.delegate(path, target)
            moved += 1
        # Queries between delegations still work (the DNS flip makes
        # each hand-off atomic for the rest of the system).
        cluster.query(workload.sample()[0])
    print(f"moved {moved} blocks; system answered queries throughout")

    # Clients re-resolve once their cached DNS entries expire; model
    # that by flushing the client resolver (the paper's TTL story).
    cluster.client_resolver.invalidate()

    show("AFTER balancing: the same workload spreads out",
         serve(cluster, workload, 300))

    print("\ninvariant violations:",
          cluster.validate(structural_only=True) or "none")


if __name__ == "__main__":
    main()
