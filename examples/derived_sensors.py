"""Hierarchical aggregation and a derived sensor, end to end.

Walks the PR 9 subsystem on a three-site deployment:

* an `avg` over every sensor is answered through partial-aggregate
  subqueries to the owning sites -- merge-state tuples on the wire,
  never subtrees;
* a repeat ask inside the freshness bound is a summary-cache hit, and
  a `count` prewarms the `max` (all shapes share one merge-state);
* a derived sensor (`spread = max - min`) registers as an ordinary
  document node, re-evaluates when covered data changes, and is
  queryable like any physical sensor;
* EXPLAIN shows the rollup decision without touching the counters.

Run:  python examples/derived_sensors.py   (needs src/ on PYTHONPATH)
"""

from repro.agg import AggregationConfig
from repro.net import Cluster
from repro.net.messages import UpdateMessage
from repro.xmlkit import parse_fragment

DOCUMENT = """
<region id='R'>
  <group id='north'>
    <sensor id='s0'><value>12.5</value></sensor>
    <sensor id='s1'><value>14.0</value></sensor>
  </group>
  <group id='south'>
    <sensor id='s0'><value>21.0</value></sensor>
    <sensor id='s1'><value>18.5</value></sensor>
  </group>
  <sensor id='hb'><value>0</value></sensor>
</region>
"""

ALL_VALUES = "/region[@id='R']/group/sensor/value"
BOUNDED = ALL_VALUES + "[timestamp() > current-time() - 60]"


class Clock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def main():
    clock = Clock()
    cluster = Cluster(parse_fragment(DOCUMENT), {
        "root": [[("region", "R")]],
        "north": [[("region", "R"), ("group", "north")]],
        "south": [[("region", "R"), ("group", "south")]],
    }, clock=clock, aggregation=AggregationConfig())
    manager = cluster.agent("root").aggregation

    print("== Rollups: tuples on the wire, not subtrees ==")
    for shape in ("count", "sum", "avg", "min", "max"):
        value = cluster.scalar(f"{shape}({BOUNDED})", at_site="root")
        print(f"  {shape:>5}: {value:g}")
    counters = manager.counters()
    print(f"  -> {counters['partials_fetched']} partial-aggregate "
          f"subqueries sent, {counters['summary']['hits']} summary hits "
          "(count prewarmed the rest: one merge-state serves all five "
          "shapes)")

    print("\n== The summary honors the freshness bound ==")
    clock.now += 50.0
    cluster.agents["south"].handle_message(UpdateMessage(
        (("region", "R"), ("group", "south"), ("sensor", "s0")),
        values={"value": "35.0"}, sender="sa"))
    print(f"  update applied at t={clock.now:g}; "
          f"max within bound: {cluster.scalar('max(' + BOUNDED + ')', at_site='root'):g}"
          " (summary-served, bounded staleness)")
    clock.now += 20.0
    print(f"  t={clock.now:g}, past the bound: "
          f"{cluster.scalar('max(' + BOUNDED + ')', at_site='root'):g}"
          " (recomputed; only the re-stamped sensor is inside the bound)")

    print("\n== A derived sensor is an ordinary node ==")
    sensor = cluster.register_derived_sensor(
        (("region", "R"),), "spread",
        f"max({ALL_VALUES}) - min({ALL_VALUES})")
    print(f"  registered spread = max - min -> {sensor.last_value:g}")
    results, _, _ = cluster.query(
        "/region[@id='R']/derived[@id='spread']", at_site="root")
    print(f"  queryable like a physical sensor: "
          f"{[v.text for r in results for v in r.iter('value')]}")

    cluster.agents["south"].handle_message(UpdateMessage(
        (("region", "R"), ("group", "south"), ("sensor", "s1")),
        values={"value": "50.0"}, sender="sa"))
    cluster.agents["root"].handle_message(UpdateMessage(
        (("region", "R"), ("sensor", "hb")),
        values={"value": "1"}, sender="sa"))
    print(f"  a remote update lands, a root-covered update wakes the "
          f"subscription: spread = {sensor.last_value:g}")

    print("\n== EXPLAIN shows the rollup decision ==")
    report = cluster.explain(f"avg({BOUNDED})")
    for line in report.render().splitlines():
        if "aggregation" in line or "summary" in line.lower():
            print(f"  {line.strip()}")


if __name__ == "__main__":
    main()
