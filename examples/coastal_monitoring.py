"""Coastal monitoring: IrisNet on the Oregon coastline (Section 1).

The paper's second envisioned deployment: buoy/station sensors feeding
a coastline hierarchy, queried for rip-current risk and other coastal
phenomena.  Demonstrates that the whole stack -- partitioning, QEG,
caching, consistency -- is service-agnostic: only the document and the
queries change.

Run:  python examples/coastal_monitoring.py
"""

from repro.core import PartitionPlan
from repro.net import Cluster
from repro.service import (
    CoastalConfig,
    build_coastal_document,
    high_risk_query,
    region_alert_query,
    station_path,
)
from repro.xmlkit import serialize


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def main():
    config = CoastalConfig(regions=3, stations_per_region=4)
    document = build_coastal_document(config)
    clock = Clock()

    # One headquarters site plus one site per coastal region.
    plan = PartitionPlan({
        "hq": [(("coastline", "oregon"),)],
        "north": [(("coastline", "oregon"), ("region", "north-coast"))],
        "central": [(("coastline", "oregon"), ("region", "central-coast"))],
        "south": [(("coastline", "oregon"), ("region", "south-coast"))],
    })
    cluster = Cluster(document, plan, service="coast", clock=clock)
    print(f"coastline deployed across {len(cluster.sites)} sites")

    # A // query sweeping every region for dangerous rip currents.
    results, site, outcome = cluster.query(high_risk_query())
    print(f"\nhigh rip-current-risk stations "
          f"(query entered at {site!r}, "
          f"{len(outcome.subqueries_sent)} subqueries):")
    for station in results:
        print("   station", station.id,
              "wave-height", station.child("wave-height").text)

    # Buoys report in; risk changes propagate to the owners.
    buoy = cluster.add_sensing_agent(
        "buoy-n1", [station_path("north-coast", "st-1")])
    buoy.send_update(station_path("north-coast", "st-1"),
                     values={"rip-current-risk": "high",
                             "wave-height": "6.20"})
    results, _, _ = cluster.query(high_risk_query())
    print(f"\nafter buoy update: {len(results)} high-risk station(s)")

    # Regional alert dashboards tolerate two-minute-old data, so they
    # are served from caches; the tolerance is part of the query.
    clock.now = 60.0
    for region in config.region_names():
        answer, _, _ = cluster.query(region_alert_query(region),
                                     at_site="hq")
        level = answer[0].text if answer else "?"
        print(f"alert level {region:14s}: {level}")

    # Aggregates gather across all sites; with a staleness tolerance
    # they come straight from the aggregate cache (Section 4's
    # "acceptable precision").
    count_query = "count(/coastline[@id='oregon']//station[wave-height > 2])"
    exact = cluster.scalar(count_query)
    clock.now += 10
    cached = cluster.scalar(count_query, max_age=60)
    print(f"\nstations with waves above 2m: {exact:.0f} "
          f"(tolerant re-ask from aggregate cache: {cached:.0f})")

    # Continuous queries (Section 7): a standing rip-current watch.
    alerts = []
    cluster.subscribe(
        "/coastline[@id='oregon']/region[@id='south-coast']"
        "//station[rip-current-risk='high']",
        lambda results: alerts.append(len(results)),
    )
    south_buoy = cluster.add_sensing_agent(
        "buoy-s2", [station_path("south-coast", "st-2")])
    south_buoy.send_update(station_path("south-coast", "st-2"),
                           values={"rip-current-risk": "high"})
    print(f"continuous query notifications: {alerts} "
          "(initial answer, then the new high-risk station)")

    print("invariant violations:",
          cluster.validate(structural_only=True) or "none")


if __name__ == "__main__":
    main()
