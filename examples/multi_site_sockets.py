"""The sensor database over real sockets: one TCP server per site.

Everything the other examples do in-process happens here across actual
localhost TCP connections carrying length-framed XML messages -- the
closest in-repo analogue of the paper's prototype deployment, where
each organizing agent is its own networked process.

Run:  python examples/multi_site_sockets.py
"""

from repro.net import TcpCluster
from repro.xmlkit import parse_fragment

DOCUMENT = """
<usRegion id='NE'><state id='PA'><county id='Allegheny'>
  <city id='Pittsburgh'>
    <neighborhood id='Oakland'>
      <block id='1'>
        <parkingSpace id='1'><available>yes</available><price>25</price></parkingSpace>
        <parkingSpace id='2'><available>no</available><price>0</price></parkingSpace>
      </block>
    </neighborhood>
    <neighborhood id='Shadyside'>
      <block id='1'>
        <parkingSpace id='1'><available>yes</available><price>50</price></parkingSpace>
      </block>
    </neighborhood>
  </city>
</county></state></usRegion>
"""

FIGURE2_QUERY = (
    "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
    "/city[@id='Pittsburgh']"
    "/neighborhood[@id='Oakland' or @id='Shadyside']"
    "/block[@id='1']/parkingSpace[available='yes']"
)


def main():
    document = parse_fragment(DOCUMENT)
    city = [("usRegion", "NE"), ("state", "PA"),
            ("county", "Allegheny"), ("city", "Pittsburgh")]
    plan = {
        "top-site": [[("usRegion", "NE")]],
        "oakland-site": [city + [("neighborhood", "Oakland")]],
        "shadyside-site": [city + [("neighborhood", "Shadyside")]],
    }

    with TcpCluster(document, plan) as tcp:
        print("sites listening on localhost:")
        for site, server in tcp.servers.items():
            host, port = server.address
            print(f"  {site:16s} {host}:{port}")

        results, site, outcome = tcp.cluster.query(FIGURE2_QUERY)
        traffic = tcp.network.traffic.summary()
        print(f"\nFigure 2 query answered at {site!r}: "
              f"{len(results)} available space(s)")
        print(f"wire traffic: {traffic['messages']} TCP messages, "
              f"{traffic['bytes']} bytes")
        for (src, dst), (count, size) in sorted(traffic["links"].items()):
            print(f"  {src:>14s} -> {dst:<16s} {count:3d} msgs "
                  f"{size:6d} bytes")

        # A sensor update crosses the wire to Oakland's server.
        space = tuple(city) + (("neighborhood", "Oakland"), ("block", "1"),
                               ("parkingSpace", "2"))
        sa = tcp.cluster.add_sensing_agent("webcam", [space])
        sa.network = tcp.network
        sa.send_update(space, values={"available": "yes"})
        results, _, _ = tcp.cluster.query(FIGURE2_QUERY)
        print(f"\nafter a TCP sensor update: {len(results)} space(s)")


if __name__ == "__main__":
    main()
